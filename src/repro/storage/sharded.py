"""The sharded directory backend: many writer processes, one tier.

The flat :class:`~repro.storage.directory.DirectoryBackend` is safe for
one writer; on shared storage with many batch/serve processes it piles
every entry (and every temp file) into one directory.  This backend
splits the keyspace by fingerprint prefix into ``shards`` subdirectories
(``int(key[:8], 16) % shards``) and makes each write crash- and
contention-safe:

* **Atomic rename per entry** — ``mkstemp`` in the destination shard,
  then ``os.replace``; readers see the old entry or the new one, never a
  torn mix.  A writer hard-killed mid-put leaves at most a stray
  ``*.tmp`` file, never a corrupt entry.
* **Advisory lock per shard** — writers take ``flock`` on the shard's
  ``.lock`` file for the duration of a put, so concurrent writers to the
  same shard serialize instead of racing temp-file churn (platforms
  without ``fcntl`` degrade to lock-free atomic renames, which are still
  torn-read safe).
* **Self-verifying envelope** — entries are stored as
  ``{"k": key, "d": digest, "v": value}``; a read checks the embedded
  key (so an entry copied or renamed under the wrong name is a corrupt
  miss, counted and evicted, exactly like ``DiskCache``), while
  :meth:`verify` additionally re-hashes every value against ``d`` to
  catch bit rot.  The hot read path skips the re-hash on purpose: torn
  writes cannot exist under atomic renames, and re-hashing every warm
  hit would double its JSON cost (the bench gates warm hits at ≤25%
  over the flat dir backend).

The shard count is pinned in a ``_shards.json`` marker at the root so
every process slicing the tree agrees on the layout; opening an existing
tier with a conflicting explicit ``shards=`` is an error rather than a
silent re-hash.  Failure containment mirrors ``DiskCache``: corrupt reads
are evicted, and ``max_consecutive_errors`` failed writes in a row trip
the per-process circuit breaker.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
import zlib
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from ..runtime.faults import storage_fault
from ..serving.fingerprint import digest
from .base import EntryInfo, StorageBackend, check_storable

__all__ = ["ShardedDirectoryBackend"]

_META_NAME = "_shards.json"
_DEFAULT_SHARDS = 16


class ShardedDirectoryBackend(StorageBackend):
    """Fingerprint-prefix shards with locked atomic writes (see module doc)."""

    scheme = "shard"

    def __init__(self, directory: str | os.PathLike,
                 shards: int | None = None,
                 max_consecutive_errors: int = 5):
        if shards is not None and shards < 1:
            raise ValueError("shards must be >= 1")
        if max_consecutive_errors < 1:
            raise ValueError("max_consecutive_errors must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.shards = self._pin_shard_count(shards)
        self._width = max(2, len(f"{self.shards - 1:x}"))
        # Shard directories are addressed on every get/put; precompute
        # the Path objects instead of re-formatting hex names per call.
        self._shard_dirs = [
            self.directory / f"{i:0{self._width}x}"
            for i in range(self.shards)]
        self.max_consecutive_errors = max_consecutive_errors
        # Same locking story as DiskCache: the lock guards accounting and
        # the breaker state; file I/O is safe outside it (atomic renames,
        # plus the per-shard flock for cross-process writers).
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.read_errors = 0
        self.write_errors = 0
        self.consecutive_errors = 0
        self._tripped = False
        # Injected-fault accounting (REPRO_FAULTS storage: schedules).
        self.injected: dict[str, int] = {}

    def _note_injected(self, mode: str) -> None:
        with self._lock:
            self.injected[mode] = self.injected.get(mode, 0) + 1

    # -- layout --------------------------------------------------------------

    def _pin_shard_count(self, requested: int | None) -> int:
        """Agree on the shard count with every other process on this tree.

        The first opener writes ``_shards.json`` (atomically, so a racing
        pair converges on whichever rename lands); later openers inherit
        it, and an *explicit* conflicting request is an error — silently
        re-hashing a populated tree would orphan every entry.
        """
        meta_path = self.directory / _META_NAME
        for _attempt in range(2):
            try:
                with open(meta_path) as fh:
                    pinned = int(json.load(fh)["shards"])
            except FileNotFoundError:
                pinned = None
            except (OSError, ValueError, TypeError, KeyError) as exc:
                raise ValueError(
                    f"unreadable shard marker {meta_path}: {exc}") from exc
            if pinned is not None:
                if requested is not None and requested != pinned:
                    raise ValueError(
                        f"{self.directory} is sharded {pinned} ways; "
                        f"refusing to open it with shards={requested}")
                return pinned
            count = requested if requested is not None else _DEFAULT_SHARDS
            fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            with os.fdopen(fd, "w") as fh:
                json.dump({"shards": count}, fh)
            os.replace(tmp, meta_path)
            # Loop once more to read back whichever writer won the race.
        raise ValueError(f"could not pin shard count under {self.directory}")

    def _shard_index(self, key: str) -> int:
        try:
            prefix = int(key[:8], 16)
        except ValueError:
            # Keys are fingerprint hex in practice; anything else still
            # deserves a stable home.
            prefix = zlib.crc32(key.encode("utf-8"))
        return prefix % self.shards

    def _shard_dir(self, key: str) -> Path:
        return self._shard_dirs[self._shard_index(key)]

    def _path(self, key: str) -> Path:
        return self._shard_dir(key) / f"{key}.json"

    @contextmanager
    def _shard_lock(self, shard_dir: Path) -> Iterator[None]:
        """Advisory exclusive lock on one shard (no-op where unavailable)."""
        if fcntl is None:
            yield
            return
        try:
            fh = open(shard_dir / ".lock", "a")
        except OSError:
            yield
            return
        try:
            try:
                fcntl.flock(fh, fcntl.LOCK_EX)
            except OSError:
                pass
            yield
        finally:
            try:
                fcntl.flock(fh, fcntl.LOCK_UN)
            except OSError:
                pass
            fh.close()

    # -- failure accounting (the DiskCache breaker, verbatim) ----------------

    def _record_write_error(self) -> None:
        with self._lock:
            self.write_errors += 1
            self.consecutive_errors += 1
            if self.consecutive_errors >= self.max_consecutive_errors:
                self._tripped = True

    @property
    def tripped(self) -> bool:
        return self._tripped

    # -- data plane ----------------------------------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        if self._tripped:
            with self._lock:
                self.misses += 1
            return default
        mode = storage_fault("get")
        if mode == "eio":
            # A transient read failure: counted, but the entry is left in
            # place — only corrupt entries are evicted.
            self._note_injected("get")
            with self._lock:
                self.read_errors += 1
                self.misses += 1
            return default
        if mode == "busy":
            self._note_injected("busy")  # lock contention absorbed
        path = self._path(key)
        try:
            with open(path) as fh:
                envelope = fh.read()
            entry = json.loads(envelope)
            value = entry["v"]
            # Key check only on the hot path; digest re-hash is verify()'s
            # job (see the module doc for why).
            ok = entry["k"] == key and "d" in entry
        except FileNotFoundError:
            with self._lock:
                self.misses += 1
            return default
        except (OSError, ValueError, TypeError, KeyError):
            ok = False
            value = default
        if not ok:
            with self._lock:
                self.read_errors += 1
                self.misses += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return default
        with self._lock:
            self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        check_storable(value)
        if self._tripped:
            return
        mode = storage_fault("put")
        if mode == "eio":
            self._note_injected("put")
            self._record_write_error()
            return
        if mode == "busy":
            self._note_injected("busy")
        tmp: str | None = None
        try:
            value_text = json.dumps(value)
            envelope = json.dumps(
                {"k": key, "d": digest(value_text), "v": value})
            if mode == "torn":
                # The rename lands but the envelope is a truncated prefix
                # (crash mid-write on a non-atomic filesystem); the next
                # read or verify() flags it corrupt and evicts.
                self._note_injected("torn")
                envelope = envelope[:max(1, len(envelope) // 2)]
            shard_dir = self._shard_dir(key)
            shard_dir.mkdir(parents=True, exist_ok=True)
            with self._shard_lock(shard_dir):
                fd, tmp = tempfile.mkstemp(dir=shard_dir, suffix=".tmp")
                with os.fdopen(fd, "w") as fh:
                    fh.write(envelope)
                os.replace(tmp, shard_dir / f"{key}.json")
        except (OSError, TypeError, ValueError):
            self._record_write_error()
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        else:
            with self._lock:
                self.consecutive_errors = 0

    def delete(self, key: str) -> bool:
        try:
            os.unlink(self._path(key))
        except OSError:
            return False
        return True

    # -- control plane -------------------------------------------------------

    def _entries(self) -> Iterator[tuple[str, Path, os.stat_result]]:
        try:
            shard_dirs = sorted(
                p for p in self.directory.iterdir() if p.is_dir())
        except OSError:
            return
        found: list[tuple[str, Path]] = []
        for shard_dir in shard_dirs:
            try:
                found.extend((p.stem, p) for p in shard_dir.glob("*.json"))
            except OSError:
                continue
        for key, path in sorted(found):
            try:
                yield key, path, path.stat()
            except OSError:
                continue

    def scan(self) -> Iterator[EntryInfo]:
        for key, _path, st in self._entries():
            yield EntryInfo(key=key, size=st.st_size, created=st.st_mtime,
                            last_used=st.st_mtime)

    def stats(self) -> dict[str, Any]:
        entries = sum(1 for _ in self._entries())
        with self._lock:
            return {
                "backend": self.scheme,
                "shards": self.shards,
                "entries": entries,
                "hits": self.hits,
                "misses": self.misses,
                "read_errors": self.read_errors,
                "write_errors": self.write_errors,
                "tripped": self._tripped,
                **({"injected": dict(self.injected)} if self.injected
                   else {}),
            }

    def verify(self) -> list[str]:
        """Corrupt keys: bad JSON, key/digest mismatch, or misfiled shard."""
        corrupt: list[str] = []
        for key, path, _st in self._entries():
            try:
                with open(path) as fh:
                    entry = json.load(fh)
                ok = (entry["k"] == key
                      and digest(json.dumps(entry["v"])) == entry["d"]
                      and path.parent == self._shard_dir(key))
            except (OSError, ValueError, TypeError, KeyError):
                ok = False
            if not ok:
                corrupt.append(key)
        return corrupt

    def evict_older_than(self, seconds: float) -> int:
        cutoff = time.time() - seconds
        evicted = 0
        for key, path, st in list(self._entries()):
            if st.st_mtime < cutoff:
                try:
                    os.unlink(path)
                except OSError:
                    continue
                evicted += 1
        return evicted
