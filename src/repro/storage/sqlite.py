"""The sqlite backend: one file, concurrent readers, real eviction.

A single database file holds every entry plus persistent accounting, so
many processes (batch runs, serve workers, the ``repro cache`` CLI) can
share one cache tier:

* **WAL mode** — readers never block the writer and vice versa; an
  entry is either fully visible or absent, never torn (a process
  hard-killed mid-``put`` rolls back with the transaction).
* **Busy handling** — the connection carries a busy timeout *and* every
  statement runs under an explicit retry loop on ``SQLITE_BUSY`` /
  ``database is locked``, so bursts of concurrent writers degrade to
  short waits, not errors.
* **Real eviction** — a ``max_bytes`` budget is enforced at write time
  by dropping least-recently-used entries; an optional ``ttl`` makes
  stale entries read as misses and reclaims them in place.
* **Hit statistics** — per-entry hit counters and the aggregate
  hit/miss/put/eviction totals are persisted *in the database*
  (batched: counters accumulate in memory and flush every
  ``flush_every`` operations and at close, so the read path stays one
  ``SELECT``).  The aggregates are monotone across processes — the
  operator's view of whether a shared tier is earning its keep.

Values are verified on read: each row stores the SHA-256 digest of its
payload, so bit rot or a tampered row reads as a miss (counted in
``read_errors``) and is evicted.  ``repro cache verify`` re-hashes every
row through :meth:`SqliteBackend.verify`.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from typing import Any, Callable, Iterator

from ..runtime.faults import storage_fault
from ..serving.fingerprint import digest
from .base import EntryInfo, StorageBackend, check_storable

__all__ = ["SqliteBackend"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS entries (
    key       TEXT PRIMARY KEY,
    value     TEXT NOT NULL,
    digest    TEXT NOT NULL,
    size      INTEGER NOT NULL,
    created   REAL NOT NULL,
    last_used REAL NOT NULL,
    hits      INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS entries_last_used ON entries(last_used);
CREATE TABLE IF NOT EXISTS stats (
    name  TEXT PRIMARY KEY,
    value INTEGER NOT NULL
);
"""

#: Aggregate counters persisted in the ``stats`` table.
_LIFETIME_KEYS = ("hits", "misses", "puts", "evictions", "expired")


def _is_busy(exc: sqlite3.OperationalError) -> bool:
    text = str(exc).lower()
    return "locked" in text or "busy" in text


class SqliteBackend(StorageBackend):
    """A shared answer-cache tier in one sqlite file (see module doc)."""

    scheme = "sqlite"

    def __init__(self, path: str | os.PathLike,
                 max_bytes: int | None = None,
                 ttl: float | None = None,
                 busy_timeout: float = 5.0,
                 flush_every: int = 64,
                 retries: int = 5,
                 clock: Callable[[], float] = time.time):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive")
        self.path = str(path)
        self.max_bytes = max_bytes
        self.ttl = ttl
        self.retries = max(1, retries)
        self.flush_every = max(1, flush_every)
        self._clock = clock
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        # One connection guarded by one lock: the daemon's request threads
        # and the batch driver share a backend, and sqlite connections are
        # not concurrency-safe objects even when the database is.
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            self.path, timeout=busy_timeout, check_same_thread=False,
            isolation_level=None)  # autocommit; writes use BEGIN IMMEDIATE
        self._retry(lambda: self._conn.executescript(_SCHEMA))
        self._retry(lambda: self._conn.execute(
            "PRAGMA journal_mode=WAL"))
        self._conn.execute(f"PRAGMA busy_timeout={int(busy_timeout * 1000)}")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._closed = False

        # Session accounting (flushed into the stats table in batches).
        self.hits = 0
        self.misses = 0
        self.expired = 0
        self.evictions = 0
        self.read_errors = 0
        self.write_errors = 0
        self._pending_hits: dict[str, int] = {}
        self._pending_stats: dict[str, int] = {}
        self._unflushed_ops = 0
        # Injected-fault accounting (REPRO_FAULTS storage: schedules).
        self.injected: dict[str, int] = {}

    def _note_injected(self, mode: str) -> None:
        self.injected[mode] = self.injected.get(mode, 0) + 1

    # -- busy retry ----------------------------------------------------------

    def _retry(self, fn: Callable[[], Any]) -> Any:
        """Run *fn* with exponential backoff on ``SQLITE_BUSY``.

        The connection's busy timeout already blocks inside sqlite; this
        loop catches the residual case (a writer holding the lock past
        the timeout) so a contended burst degrades to waiting instead of
        an exception on the cache path.
        """
        delay = 0.01
        for attempt in range(self.retries):
            try:
                return fn()
            except sqlite3.OperationalError as exc:
                if not _is_busy(exc) or attempt == self.retries - 1:
                    raise
                time.sleep(delay)
                delay = min(delay * 2, 0.25)

    # -- batched accounting --------------------------------------------------

    def _bump(self, name: str, by: int = 1) -> None:
        self._pending_stats[name] = self._pending_stats.get(name, 0) + by

    def _note_op(self) -> None:
        self._unflushed_ops += 1
        if self._unflushed_ops >= self.flush_every:
            self._flush_locked()

    def _flush_locked(self) -> None:
        """Persist pending per-entry hits and aggregate stats (lock held)."""
        if not self._pending_hits and not self._pending_stats:
            self._unflushed_ops = 0
            return
        hits = self._pending_hits
        stats = self._pending_stats
        now = self._clock()

        def write() -> None:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                for key, count in hits.items():
                    self._conn.execute(
                        "UPDATE entries SET hits = hits + ?, last_used = ? "
                        "WHERE key = ?", (count, now, key))
                for name, count in stats.items():
                    self._conn.execute(
                        "INSERT INTO stats(name, value) VALUES(?, ?) "
                        "ON CONFLICT(name) DO UPDATE SET "
                        "value = value + excluded.value", (name, count))
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._conn.execute("COMMIT")

        try:
            self._retry(write)
        except sqlite3.Error:
            self.write_errors += 1
            return  # keep the pending deltas; the next flush retries them
        self._pending_hits = {}
        self._pending_stats = {}
        self._unflushed_ops = 0

    # -- data plane ----------------------------------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        with self._lock:
            if self._closed:
                return default
            mode = storage_fault("get")
            if mode == "eio":
                # A transient read failure — counted like a real
                # sqlite3.Error on the SELECT; the row stays.
                self._note_injected("get")
                self.read_errors += 1
                return default
            injected_busy = {"left": 1 if mode == "busy" else 0}
            if mode == "busy":
                self._note_injected("busy")

            def query():
                if injected_busy["left"]:
                    injected_busy["left"] -= 1
                    raise sqlite3.OperationalError(
                        "database is locked (injected)")
                return self._conn.execute(
                    "SELECT value, digest, created FROM entries "
                    "WHERE key = ?", (key,)).fetchone()

            try:
                row = self._retry(query)
            except sqlite3.Error:
                self.read_errors += 1
                return default
            if row is None:
                self.misses += 1
                self._bump("misses")
                self._note_op()
                return default
            value_text, stored_digest, created = row
            if self.ttl is not None and self._clock() - created > self.ttl:
                self.expired += 1
                self.misses += 1
                self._bump("misses")
                self._bump("expired")
                self._delete_quietly(key)
                self._note_op()
                return default
            try:
                value = json.loads(value_text)
                ok = digest(value_text) == stored_digest
            except ValueError:
                ok = False
            if not ok:
                # Corrupt row (bit rot, tampering): a miss, plus eviction
                # so it cannot keep failing — the DiskCache contract.
                self.read_errors += 1
                self.misses += 1
                self._bump("misses")
                self._delete_quietly(key)
                self._note_op()
                return default
            self.hits += 1
            self._bump("hits")
            self._pending_hits[key] = self._pending_hits.get(key, 0) + 1
            self._note_op()
            return value

    def put(self, key: str, value: Any) -> None:
        check_storable(value)
        try:
            value_text = json.dumps(value)
        except (TypeError, ValueError):
            with self._lock:
                self.write_errors += 1
            return
        value_digest = digest(value_text)
        size = len(value_text)
        with self._lock:
            if self._closed:
                return
            mode = storage_fault("put")
            if mode == "eio":
                # The write fails as with a real sqlite3.Error: counted,
                # nothing stored.
                self._note_injected("put")
                self.write_errors += 1
                return
            if mode == "torn":
                # The transaction "lands" carrying a truncated payload
                # against the full-text digest — what bit rot or a torn
                # page looks like; the next read (or verify) detects the
                # mismatch and evicts.
                self._note_injected("torn")
                value_text = value_text[:max(1, len(value_text) // 2)]
                size = len(value_text)
            injected_busy = {"left": 1 if mode == "busy" else 0}
            if mode == "busy":
                self._note_injected("busy")
            now = self._clock()

            def write() -> None:
                if injected_busy["left"]:
                    injected_busy["left"] -= 1
                    raise sqlite3.OperationalError(
                        "database is locked (injected)")
                self._conn.execute("BEGIN IMMEDIATE")
                try:
                    self._conn.execute(
                        "INSERT INTO entries"
                        "(key, value, digest, size, created, last_used, hits)"
                        " VALUES(?, ?, ?, ?, ?, ?, 0) "
                        "ON CONFLICT(key) DO UPDATE SET "
                        "value = excluded.value, digest = excluded.digest, "
                        "size = excluded.size, created = excluded.created, "
                        "last_used = excluded.last_used",
                        (key, value_text, value_digest, size, now, now))
                    self._evict_over_budget(key)
                except BaseException:
                    self._conn.execute("ROLLBACK")
                    raise
                self._conn.execute("COMMIT")

            try:
                self._retry(write)
            except sqlite3.Error:
                self.write_errors += 1
                return
            self._bump("puts")
            self._note_op()

    def _evict_over_budget(self, fresh_key: str) -> None:
        """LRU eviction inside the put transaction (lock held).

        The just-written entry is never its own victim: a value larger
        than the whole budget stays (and will be the first LRU victim of
        the *next* put) rather than leaving the cache thrashing empty.
        """
        if self.max_bytes is None:
            return
        (total,) = self._conn.execute(
            "SELECT COALESCE(SUM(size), 0) FROM entries").fetchone()
        while total > self.max_bytes:
            row = self._conn.execute(
                "SELECT key, size FROM entries WHERE key != ? "
                "ORDER BY last_used ASC, key ASC LIMIT 1",
                (fresh_key,)).fetchone()
            if row is None:
                break
            victim, victim_size = row
            self._conn.execute("DELETE FROM entries WHERE key = ?", (victim,))
            total -= victim_size
            self.evictions += 1
            self._bump("evictions")

    def _delete_quietly(self, key: str) -> None:
        try:
            self._retry(lambda: self._conn.execute(
                "DELETE FROM entries WHERE key = ?", (key,)))
        except sqlite3.Error:
            self.write_errors += 1

    def delete(self, key: str) -> bool:
        with self._lock:
            if self._closed:
                return False
            try:
                cursor = self._retry(lambda: self._conn.execute(
                    "DELETE FROM entries WHERE key = ?", (key,)))
            except sqlite3.Error:
                self.write_errors += 1
                return False
            return cursor.rowcount > 0

    # -- control plane -------------------------------------------------------

    def scan(self) -> Iterator[EntryInfo]:
        with self._lock:
            if self._closed:
                return
            self._flush_locked()
            rows = self._retry(lambda: self._conn.execute(
                "SELECT key, size, created, last_used, hits FROM entries "
                "ORDER BY key").fetchall())
        for key, size, created, last_used, hits in rows:
            yield EntryInfo(key=key, size=size, created=created,
                            last_used=last_used, hits=hits)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            if self._closed:
                entries, total_bytes, lifetime = 0, 0, {}
            else:
                self._flush_locked()
                entries, total_bytes = self._retry(
                    lambda: self._conn.execute(
                        "SELECT COUNT(*), COALESCE(SUM(size), 0) "
                        "FROM entries").fetchone())
                lifetime = dict(self._retry(lambda: self._conn.execute(
                    "SELECT name, value FROM stats").fetchall()))
            return {
                "backend": self.scheme,
                "path": self.path,
                "entries": entries,
                "total_bytes": total_bytes,
                "max_bytes": self.max_bytes,
                "ttl": self.ttl,
                "hits": self.hits,
                "misses": self.misses,
                "expired": self.expired,
                "evictions": self.evictions,
                "read_errors": self.read_errors,
                "write_errors": self.write_errors,
                "tripped": False,
                "lifetime": {name: lifetime.get(name, 0)
                             for name in _LIFETIME_KEYS},
                **({"injected": dict(self.injected)} if self.injected
                   else {}),
            }

    def verify(self) -> list[str]:
        corrupt: list[str] = []
        with self._lock:
            if self._closed:
                return corrupt
            self._flush_locked()
            rows = self._retry(lambda: self._conn.execute(
                "SELECT key, value, digest FROM entries "
                "ORDER BY key").fetchall())
        for key, value_text, stored_digest in rows:
            try:
                json.loads(value_text)
                ok = digest(value_text) == stored_digest
            except ValueError:
                ok = False
            if not ok:
                corrupt.append(key)
        return corrupt

    def evict_older_than(self, seconds: float) -> int:
        with self._lock:
            if self._closed:
                return 0
            self._flush_locked()
            cutoff = self._clock() - seconds
            try:
                cursor = self._retry(lambda: self._conn.execute(
                    "DELETE FROM entries WHERE last_used < ?", (cutoff,)))
            except sqlite3.Error:
                self.write_errors += 1
                return 0
            evicted = cursor.rowcount
            if evicted > 0:
                self.evictions += evicted
                self._bump("evictions", evicted)
                self._flush_locked()
            return evicted

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            try:
                self._flush_locked()
            finally:
                self._closed = True
                try:
                    self._conn.close()
                except sqlite3.Error:
                    pass

    def __repr__(self) -> str:
        return f"<SqliteBackend {self.path}>"
