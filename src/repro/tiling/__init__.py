"""Rectangle tiling and the grid ontologies of Theorem 10."""

from .problems import (
    TilingProblem, block_problem, cell_closed, grid_element, grid_instance,
    grid_root, stripes_problem, trivial_problem, unsolvable_problem,
    untiled_grid, xy_functional,
)
from .grid_ontology import (
    GridMarkerEngine, eq1, geq2, ocell_certain_marker, ocell_consistent,
    ocell_dl, op_dl, op_with_disjunction,
)
from .run_encoding import (
    RunFittingOMQ, encode_partial_run, lemma4_dl, marker_role,
    successor_triples,
)

__all__ = [
    "TilingProblem", "block_problem", "cell_closed", "grid_element", "grid_instance",
    "grid_root", "stripes_problem", "trivial_problem", "unsolvable_problem",
    "untiled_grid", "xy_functional", "GridMarkerEngine", "eq1", "geq2",
    "ocell_certain_marker", "ocell_consistent", "ocell_dl", "op_dl",
    "op_with_disjunction", "RunFittingOMQ", "encode_partial_run",
    "lemma4_dl", "marker_role", "successor_triples",
]
