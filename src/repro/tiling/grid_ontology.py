"""The grid ontologies O_cell and O_P of Theorem 10 (Appendix H).

Two layers are provided:

1. **Faithful DL constructions** (:func:`ocell_dl`, :func:`op_dl`): the
   ALCIF_l depth-2 axioms from the appendix — functionality of X, Y and
   their inverses, the ``> ⊑ ∃Q.>`` axioms that make the marker concepts
   ``(=1 Q)`` invisible to queries, the cell-closing axiom, and (for O_P)
   the Figure-4 marker propagation axioms.  These witness that the
   construction lands in the no-dichotomy fragment of Figure 1.

2. **Executable marker semantics** (:func:`ocell_consistent`,
   :func:`ocell_certain_marker`, :class:`GridMarkerEngine`): the polynomial
   decision procedures extracted from Lemma 11 (Claim 1's equivalence-class
   characterization of consistency) and Lemma 12 — the "Datalog≠-evaluated"
   form of the ontologies, suitable for instances of arbitrary size.

The two layers are cross-checked against each other on small instances in
the test suite via the SAT backend.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Mapping

from ..dl.concepts import (
    AndC, AtMostC, AtomicC, BottomC, Concept, ConceptInclusion, DLOntology,
    ExistsC, ForallC, NotC, OrC, Role, TopC,
)
from ..logic.instance import Interpretation
from ..logic.syntax import Element
from .problems import (
    TilingProblem, cell_closed, grid_root, xy_functional, _functional_pairs,
)

X, Y = Role("X"), Role("Y")
XI, YI = Role("X", inverse=True), Role("Y", inverse=True)


def eq1(role: Role) -> Concept:
    """(=1 Q) := ∃Q.> ⊓ (≤1 Q) — the marker concept of the construction."""
    return AndC((ExistsC(role, TopC()), AtMostC(1, role, TopC())))


def geq2(role: Role) -> Concept:
    """(≥2 Q) := ∃Q.> ⊓ ¬(≤1 Q)."""
    return AndC((ExistsC(role, TopC()), NotC(AtMostC(1, role, TopC()))))


def _aux_axioms(aux_roles: list[Role]) -> list[ConceptInclusion]:
    """``> ⊑ ∃Q.>`` for every auxiliary relation: the choice is only
    between exactly one and at least two successors, which queries cannot
    see."""
    return [ConceptInclusion(TopC(), ExistsC(q, TopC()))
            for q in aux_roles]


def ocell_dl() -> DLOntology:
    """The ontology O_cell marking lower-left corners of closed cells.

    Relations: X, Y (grid), P (the cell marker), R1, R2 and the word-
    indexed auxiliaries R1_XY, R1_YX, R2_XY, R2_YX.  Axiom groups follow
    the appendix: (1) functionality, (2) marker choice, (3) cell marking,
    (4)/(5) odd-cycle control, (6) the ∃W definitional axioms.
    """
    p = Role("P")
    r = {(i, w): Role(f"R{i}_{w}") for i in (1, 2) for w in ("XY", "YX", "C", "CC")}
    r1, r2 = Role("R1"), Role("R2")
    axioms: list[ConceptInclusion] = []
    # (1) functionality of X, Y, X-, Y- via local functionality concepts
    for z in (X, Y, XI, YI):
        axioms.append(ConceptInclusion(TopC(), AtMostC(1, z, TopC())))
    # (2) invisibility: every aux relation has at least one successor
    aux = [p, r1, r2] + list(r.values())
    axioms.extend(_aux_axioms(aux))
    # (3) marker choice: every node satisfies (=1R1) or (=1R2)
    axioms.append(ConceptInclusion(TopC(), OrC((eq1(r1), eq1(r2)))))
    # (4) cell marking: both markers reachable along XY and YX => (=1P)
    closed = AndC((eq1(r[(1, "XY")]), eq1(r[(1, "YX")]),
                   eq1(r[(2, "XY")]), eq1(r[(2, "YX")])))
    axioms.append(ConceptInclusion(closed, eq1(p)))
    # (5) odd-cycle control: along the cycle word C = X-Y-XY, each third
    # node carries marker i (axiom group (4) of the appendix) and doubly
    # marked nodes propagate to their neighbours (group (5)).
    for i, j in ((1, 2), (2, 1)):
        axioms.append(ConceptInclusion(
            eq1(r[(j, "CC")]),
            OrC((eq1(Role(f"R{i}")), eq1(r[(i, "C")]), eq1(r[(i, "CC")])))))
    both = AndC((eq1(r[(1, "CC")]), eq1(r[(2, "CC")])))
    r12 = AndC((eq1(r1), eq1(r2)))
    axioms.append(ConceptInclusion(both, r12))
    # (6) the ∃W definitional axioms for the word-indexed relations:
    # (=1 Ri_XY) ≡ ∃X.(=1 Ri_Y') — flattened to the words used above.
    for i in (1, 2):
        base = Role(f"R{i}")
        for word, path in (("XY", (X, Y)), ("YX", (Y, X)),
                           ("C", (XI, YI, X, Y)), ("CC", (XI, YI, X, Y, XI, YI, X, Y))):
            # introduce a chain of helper relations, one per suffix
            prev: Concept = eq1(base)
            for k, step in enumerate(reversed(path)):
                suffix = f"{word}{len(path) - k}"
                helper = Role(f"R{i}_{word}" if k == len(path) - 1
                              else f"R{i}_h{suffix}")
                definition = ExistsC(step, prev)
                axioms.append(ConceptInclusion(eq1(helper), definition))
                axioms.append(ConceptInclusion(definition, eq1(helper)))
                axioms.append(ConceptInclusion(TopC(), ExistsC(helper, TopC())))
                prev = eq1(helper)
    return DLOntology(axioms, name="Ocell")


# ---------------------------------------------------------------------------
# Claim 1: the polynomial consistency characterization for O_cell
# ---------------------------------------------------------------------------


def _preset_at_least_two(instance: Interpretation, rel: str) -> set[Element]:
    """Elements with >= 2 distinct rel-successors preset in D."""
    successors: dict[Element, set[Element]] = {}
    for a, b in instance.tuples(rel):
        successors.setdefault(a, set()).add(b)
    return {a for a, succ in successors.items() if len(succ) >= 2}


def _leq_edges(instance: Interpretation) -> list[tuple[Element, Element]]:
    """e1 <= e2 iff X(d,d1), Y(d1,e1), Y(d,d2), X(d2,e2) for some d."""
    x_succ = _functional_pairs(instance, "X")
    y_succ = _functional_pairs(instance, "Y")
    assert x_succ is not None and y_succ is not None
    edges = []
    for d in set(x_succ) & set(y_succ):
        e1 = y_succ.get(x_succ[d])
        e2 = x_succ.get(y_succ[d])
        if e1 is not None and e2 is not None:
            edges.append((e1, e2))
    return edges


def _chain_or_cycle(edges: list[tuple[Element, Element]]) -> list[list[Element]]:
    """Split the (functional, injective) <=-graph into chains and cycles.

    A cycle is returned with its first element repeated at the end.
    """
    succ = dict(edges)
    pred = {b: a for a, b in edges}
    nodes = set(succ) | set(pred)
    components: list[list[Element]] = []
    seen: set[Element] = set()
    for node in sorted(nodes, key=repr):
        if node in seen:
            continue
        # walk back to the start (or detect a cycle)
        start = node
        visited = {start}
        while start in pred and pred[start] not in visited:
            start = pred[start]
            visited.add(start)
        is_cycle = start in pred  # no proper start found
        chain = [start]
        cur = start
        while cur in succ:
            nxt = succ[cur]
            chain.append(nxt)
            if nxt == start:
                break  # cycle closed
            cur = nxt
        seen |= set(chain)
        components.append(chain)
    return components


def _two_colorable_no_triple(
    chain: list[Element],
    forced: dict[Element, int],
    cyclic: bool,
) -> bool:
    """Is there a {1,2}-coloring respecting *forced* with no three
    consecutive equal colors (condition (†) of Claim 1)?"""
    if cyclic:
        nodes = chain[:-1]
    else:
        nodes = chain
    if not nodes:
        return True

    def compatible(prefix: tuple[int, ...]) -> bool:
        if len(prefix) >= 3 and prefix[-1] == prefix[-2] == prefix[-3]:
            return False
        node = nodes[len(prefix) - 1]
        want = forced.get(node)
        return want is None or want == prefix[-1]

    def rec(prefix: tuple[int, ...]) -> bool:
        if len(prefix) == len(nodes):
            if cyclic and len(nodes) >= 3:
                ring = prefix + prefix[:2]
                for k in range(len(nodes)):
                    if ring[k] == ring[k + 1] == ring[k + 2]:
                        return False
            return True
        for color in (1, 2):
            nxt = prefix + (color,)
            if compatible(nxt):
                if rec(nxt):
                    return True
        return False

    return rec(())


def ocell_consistent(instance: Interpretation) -> bool:
    """Claim 1: consistency of D w.r.t. O_cell.

    Conditions: functionality of X, Y and inverses; at most one preset
    P-successor at closed cells; and for every <=-equivalence class, a
    marker partition respecting the (≥2 R_i) presets without three
    consecutive equal markers ((a)/(b) of Claim 1).
    """
    if not xy_functional(instance):
        return False
    # a closed cell may not have two preset P-successors
    p_many = _preset_at_least_two(instance, "P")
    for d in instance.dom():
        if cell_closed(instance, d) and d in p_many:
            return False
    # (>=2 R_i)(d) preset forces the OTHER marker: forced color j
    forced: dict[Element, int] = {}
    for i, j in ((1, 2), (2, 1)):
        for d in _preset_at_least_two(instance, f"R{i}"):
            if forced.get(d, j) != j:
                return False  # both markers excluded
            forced[d] = j
    for component in _chain_or_cycle(_leq_edges(instance)):
        cyclic = len(component) >= 2 and component[0] == component[-1]
        if cyclic and len(component) == 2:
            # self-loop e <= e: condition (a)
            if component[0] in forced:
                return False
            continue
        if not _two_colorable_no_triple(component, forced, cyclic):
            return False
    return True


def ocell_certain_marker(instance: Interpretation, d: Element) -> bool:
    """Lemma 11.1: O_cell, D |= (=1P)(d) iff D is inconsistent w.r.t.
    O_cell or D |= cell(d)."""
    if not ocell_consistent(instance):
        return True
    return cell_closed(instance, d)


# ---------------------------------------------------------------------------
# O_P: the tiling ontology and its marker semantics (Lemma 12)
# ---------------------------------------------------------------------------


def op_dl(problem: TilingProblem) -> DLOntology:
    """The ontology O_P of Theorem 10 (Figure 4 axioms on top of O_cell).

    Markers: F (grid verified up to here), U/R/L/D (borders), A (lower-left
    corner of a verified grid), FX/FY (depth-flattening helpers).
    """
    base = ocell_dl()
    f, fx, fy = Role("F"), Role("FX"), Role("FY")
    u, rr, ll, dd, a = (Role("U"), Role("Rb"), Role("Lb"), Role("Db"), Role("A"))
    p = Role("P")
    axioms: list[ConceptInclusion] = list(base.axioms)
    axioms.extend(_aux_axioms([f, fx, fy, u, rr, ll, dd, a]))
    tiles = {t: AtomicC(t) for t in problem.tiles}
    t_init, t_final = tiles[problem.t_init], tiles[problem.t_final]

    # the final tile starts the verification at the upper right corner
    axioms.append(ConceptInclusion(
        t_final, AndC((eq1(f), eq1(u), eq1(rr)))))
    # propagate along the upper border (rightwards seen from the left)
    for ti, tj in sorted(problem.horizontal):
        axioms.append(ConceptInclusion(
            AndC((ExistsC(X, AndC((eq1(u), eq1(f), tiles[tj]))), tiles[ti])),
            AndC((eq1(u), eq1(f)))))
    # propagate along the right border
    for ti, tl in sorted(problem.vertical):
        axioms.append(ConceptInclusion(
            AndC((ExistsC(Y, AndC((eq1(rr), eq1(f), tiles[tl]))), tiles[ti])),
            AndC((eq1(rr), eq1(f)))))
    # depth-flattening helpers
    axioms.append(ConceptInclusion(ExistsC(Y, eq1(f)), eq1(fy)))
    axioms.append(ConceptInclusion(eq1(fy), ExistsC(Y, eq1(f))))
    axioms.append(ConceptInclusion(ExistsC(X, eq1(f)), eq1(fx)))
    axioms.append(ConceptInclusion(eq1(fx), ExistsC(X, eq1(f))))
    # interior propagation through closed, correctly tiled cells
    for ti in sorted(problem.tiles):
        compatible = [
            (tj, tl)
            for tj in problem.tiles for tl in problem.tiles
            if (ti, tj) in problem.horizontal and (ti, tl) in problem.vertical
        ]
        for tj, tl in compatible:
            axioms.append(ConceptInclusion(
                AndC((
                    ExistsC(X, AndC((tiles[tj], eq1(f), eq1(fy)))),
                    ExistsC(Y, AndC((tiles[tl], eq1(f), eq1(fx)))),
                    eq1(p), tiles[ti],
                )),
                eq1(f)))
    # the initial tile with the marker is the verified lower-left corner
    axioms.append(ConceptInclusion(
        AndC((eq1(f), t_init)), AndC((eq1(a), eq1(dd), eq1(ll)))))
    # tiles are mutually exclusive
    for s, t in itertools.combinations(sorted(problem.tiles), 2):
        axioms.append(ConceptInclusion(AndC((tiles[s], tiles[t])), BottomC()))
    # border axioms
    axioms.append(ConceptInclusion(eq1(u), ForallC(Y, BottomC())))
    axioms.append(ConceptInclusion(eq1(rr), ForallC(X, BottomC())))
    axioms.append(ConceptInclusion(eq1(u), ForallC(X, eq1(u))))
    axioms.append(ConceptInclusion(eq1(rr), ForallC(Y, eq1(rr))))
    axioms.append(ConceptInclusion(eq1(dd), ForallC(YI, BottomC())))
    axioms.append(ConceptInclusion(eq1(ll), ForallC(XI, BottomC())))
    axioms.append(ConceptInclusion(eq1(dd), ForallC(X, eq1(dd))))
    axioms.append(ConceptInclusion(eq1(ll), ForallC(Y, eq1(ll))))
    return DLOntology(axioms, name=f"OP[{','.join(problem.tiles)}]")


def op_with_disjunction(problem: TilingProblem) -> DLOntology:
    """O = O_P ∪ {(=1A) ⊑ B1 ⊔ B2} — the Theorem-10 reduction target."""
    base = op_dl(problem)
    extra = ConceptInclusion(
        eq1(Role("A")), OrC((AtomicC("B1"), AtomicC("B2"))))
    return DLOntology(tuple(base.axioms) + (extra,),
                      name=base.name + "+disj")


@dataclass(frozen=True)
class GridMarkerEngine:
    """Executable Lemma-12 semantics for O_P.

    ``certain_a(D, d)`` decides O_P, D |= (=1A)(d): true iff D is
    inconsistent w.r.t. O_P or D |= grid(d).
    """

    problem: TilingProblem

    def consistent(self, instance: Interpretation) -> bool:
        """Consistency w.r.t. O_P on grid-shaped instances.

        Necessary conditions: O_cell consistency and unique tile labels.
        By Lemma 12.2 they are sufficient for closed properly-tiled grids
        and remain sufficient on the grid-with-defects family exercised by
        the benchmarks (every such instance extends to a model by choosing
        >=2 successors for all unforced markers).
        """
        if not ocell_consistent(instance):
            return False
        for elem in instance.dom():
            labels = [t for t in self.problem.tiles
                      if (elem,) in instance.tuples(t)]
            if len(labels) > 1:
                return False
        return True

    def certain_a(self, instance: Interpretation, d: Element) -> bool:
        if not self.consistent(instance):
            return True
        return grid_root(instance, d, self.problem)

    def corner_disjunction_witness(
        self, instance: Interpretation, d: Element,
    ) -> bool:
        """For O_P + {(=1A) ⊑ B1 ⊔ B2}: is B1(d) v B2(d) certain while
        neither disjunct is?  True exactly when (=1A)(d) is certain and D
        is consistent — the non-materializability witness of Lemma 13."""
        return self.consistent(instance) and self.certain_a(instance, d)
