"""Rectangle tiling problems and grid instances (Section 7).

A finite rectangle tiling problem P = (T, H, V) has tile types T with a
designated initial tile (lower left corner, nowhere else) and final tile
(upper right corner, nowhere else), and horizontal/vertical matching
relations.  The existence of a tiling is undecidable in general; for the
bounded search used here a maximum rectangle size is supplied.

Grid instances represent rectangles with binary relations X (right
neighbour) and Y (up neighbour) and one unary relation per tile type —
exactly the encoding used by the ontologies O_cell and O_P.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Mapping

from ..logic.instance import Interpretation
from ..logic.syntax import Atom, Const, Element

Coord = tuple[int, int]


@dataclass(frozen=True)
class TilingProblem:
    """P = (T, H, V) with initial and final tiles."""

    tiles: tuple[str, ...]
    horizontal: frozenset[tuple[str, str]]
    vertical: frozenset[tuple[str, str]]
    t_init: str
    t_final: str

    def __init__(
        self,
        tiles: Iterable[str],
        horizontal: Iterable[tuple[str, str]],
        vertical: Iterable[tuple[str, str]],
        t_init: str,
        t_final: str,
    ):
        object.__setattr__(self, "tiles", tuple(tiles))
        object.__setattr__(self, "horizontal", frozenset(horizontal))
        object.__setattr__(self, "vertical", frozenset(vertical))
        object.__setattr__(self, "t_init", t_init)
        object.__setattr__(self, "t_final", t_final)
        for t in (t_init, t_final):
            if t not in self.tiles:
                raise ValueError(f"{t!r} is not a tile type")

    def is_valid_tiling(self, tiling: Mapping[Coord, str]) -> bool:
        """Check the Definition in Appendix H for an n x m candidate."""
        if not tiling:
            return False
        n = max(i for i, _ in tiling)
        m = max(j for _, j in tiling)
        coords = {(i, j) for i in range(n + 1) for j in range(m + 1)}
        if set(tiling) != coords:
            return False
        if tiling[(0, 0)] != self.t_init or tiling[(n, m)] != self.t_final:
            return False
        for (i, j), tile in tiling.items():
            if tile == self.t_init and (i, j) != (0, 0):
                return False
            if tile == self.t_final and (i, j) != (n, m):
                return False
            if i < n and (tile, tiling[(i + 1, j)]) not in self.horizontal:
                return False
            if j < m and (tile, tiling[(i, j + 1)]) not in self.vertical:
                return False
        return True

    def find_tiling(self, max_n: int, max_m: int) -> dict[Coord, str] | None:
        """Search for a tiling of some rectangle up to the given size."""
        for n in range(max_n + 1):
            for m in range(max_m + 1):
                tiling = self._tile_rectangle(n, m)
                if tiling is not None:
                    return tiling
        return None

    def tile_rectangle(self, n: int, m: int) -> dict[Coord, str] | None:
        """Search for a tiling of the exact n x m rectangle."""
        return self._tile_rectangle(n, m)

    def _tile_rectangle(self, n: int, m: int) -> dict[Coord, str] | None:
        coords = [(i, j) for j in range(m + 1) for i in range(n + 1)]
        assignment: dict[Coord, str] = {}

        def options(coord: Coord) -> list[str]:
            i, j = coord
            if coord == (0, 0) and coord == (n, m):
                base = [self.t_init] if self.t_init == self.t_final else []
            elif coord == (0, 0):
                base = [self.t_init] if self.t_init != self.t_final else []
            elif coord == (n, m):
                base = [self.t_final]
            else:
                base = [t for t in self.tiles
                        if t not in (self.t_init, self.t_final)]
            out = []
            for tile in base:
                if i > 0 and (assignment[(i - 1, j)], tile) not in self.horizontal:
                    continue
                if j > 0 and (assignment[(i, j - 1)], tile) not in self.vertical:
                    continue
                out.append(tile)
            return out

        def rec(idx: int) -> bool:
            if idx == len(coords):
                return True
            coord = coords[idx]
            for tile in options(coord):
                assignment[coord] = tile
                if rec(idx + 1):
                    return True
                del assignment[coord]
            return False

        if rec(0):
            return dict(assignment)
        return None

    def admits_tiling(self, max_n: int, max_m: int) -> bool:
        return self.find_tiling(max_n, max_m) is not None


def trivial_problem() -> TilingProblem:
    """A problem with a single tile that tiles every rectangle trivially
    only when the rectangle is 1 x 1 (Tinit = Tfinal = T0)."""
    return TilingProblem(
        tiles=("T0",),
        horizontal=[("T0", "T0")],
        vertical=[("T0", "T0")],
        t_init="T0",
        t_final="T0",
    )


def block_problem() -> TilingProblem:
    """A problem tiling every rectangle with n, m >= 1: I at the corner,
    F at the top right, M (mortar) everywhere else."""
    return TilingProblem(
        tiles=("I", "M", "F"),
        horizontal=[("I", "M"), ("M", "M"), ("M", "F"), ("I", "F")],
        vertical=[("I", "M"), ("M", "M"), ("M", "F"), ("I", "F")],
        t_init="I",
        t_final="F",
    )


def stripes_problem() -> TilingProblem:
    """Horizontal stripe rows; admits only single-row rectangles."""
    return TilingProblem(
        tiles=("I", "W", "B", "F"),
        horizontal=[("I", "B"), ("B", "W"), ("W", "B"), ("B", "F"),
                    ("I", "F")],
        vertical=[("W", "W"), ("B", "B"), ("I", "I"), ("F", "F")],
        t_init="I",
        t_final="F",
    )


def unsolvable_problem() -> TilingProblem:
    """No tiling exists: the final tile is horizontally/vertically
    unreachable from the initial tile."""
    return TilingProblem(
        tiles=("I", "M", "F"),
        horizontal=[("I", "M"), ("M", "M")],
        vertical=[("I", "I"), ("M", "M")],
        t_init="I",
        t_final="F",
    )


# ---------------------------------------------------------------------------
# Grid instances
# ---------------------------------------------------------------------------


def grid_element(i: int, j: int) -> Const:
    return Const(f"g{i}_{j}")


def grid_instance(tiling: Mapping[Coord, str]) -> Interpretation:
    """The instance encoding a tiled rectangle with X, Y and tile labels."""
    out = Interpretation()
    n = max(i for i, _ in tiling)
    m = max(j for _, j in tiling)
    for (i, j), tile in tiling.items():
        out.add(Atom(tile, (grid_element(i, j),)))
        if i < n:
            out.add(Atom("X", (grid_element(i, j), grid_element(i + 1, j))))
        if j < m:
            out.add(Atom("Y", (grid_element(i, j), grid_element(i, j + 1))))
    return out


def untiled_grid(n: int, m: int) -> Interpretation:
    """An n x m grid with X/Y edges and no tile labels."""
    out = Interpretation()
    for i in range(n + 1):
        for j in range(m + 1):
            if i < n:
                out.add(Atom("X", (grid_element(i, j), grid_element(i + 1, j))))
            if j < m:
                out.add(Atom("Y", (grid_element(i, j), grid_element(i, j + 1))))
    if n == 0 and m == 0:
        out.add(Atom("Node", (grid_element(0, 0),)))
    return out


def _functional_pairs(instance: Interpretation, rel: str) -> dict[Element, Element] | None:
    """The successor map of a relation, or None if not functional."""
    out: dict[Element, Element] = {}
    for a, b in instance.tuples(rel):
        if a in out and out[a] != b:
            return None
        out[a] = b
    return out


def xy_functional(instance: Interpretation) -> bool:
    """X, Y, X−, Y− all functional in D (required by O_cell)."""
    for rel in ("X", "Y"):
        if _functional_pairs(instance, rel) is None:
            return False
        inverse: dict[Element, Element] = {}
        for a, b in instance.tuples(rel):
            if b in inverse and inverse[b] != a:
                return False
            inverse[b] = a
    return True


def cell_closed(instance: Interpretation, d: Element) -> bool:
    """``D |= cell(d)``: d's XY- and YX-successors exist and coincide."""
    x_succ = _functional_pairs(instance, "X")
    y_succ = _functional_pairs(instance, "Y")
    if x_succ is None or y_succ is None:
        return False
    d1 = x_succ.get(d)
    d2 = y_succ.get(d)
    if d1 is None or d2 is None:
        return False
    d3 = y_succ.get(d1)
    d4 = x_succ.get(d2)
    return d3 is not None and d3 == d4


def grid_root(
    instance: Interpretation,
    d: Element,
    problem: TilingProblem,
) -> bool:
    """``D |= grid(d)``: d is the lower-left corner of a closed, properly
    tiled rectangle for the problem (Appendix H)."""
    x_succ = _functional_pairs(instance, "X")
    y_succ = _functional_pairs(instance, "Y")
    if x_succ is None or y_succ is None:
        return False
    # walk the bottom row and left column to find n and m
    gamma: dict[Coord, Element] = {(0, 0): d}
    i = 0
    cur = d
    while cur in x_succ:
        i += 1
        cur = x_succ[cur]
        gamma[(i, 0)] = cur
        if i > len(instance.dom()):
            return False  # cycle
    n = i
    j = 0
    cur = d
    while cur in y_succ:
        j += 1
        cur = y_succ[cur]
        gamma[(0, j)] = cur
        if j > len(instance.dom()):
            return False
    m = j
    # fill the interior and check closure of cells
    for jj in range(1, m + 1):
        for ii in range(1, n + 1):
            below = gamma.get((ii, jj - 1))
            left = gamma.get((ii - 1, jj))
            if below is None or left is None:
                return False
            up = y_succ.get(below)
            right = x_succ.get(left)
            if up is None or up != right:
                return False
            gamma[(ii, jj)] = up
    cells = set(gamma.values())
    if len(cells) != (n + 1) * (m + 1):
        return False
    # read off the tiling
    tiling: dict[Coord, str] = {}
    for coord, elem in gamma.items():
        labels = [t for t in problem.tiles
                  if (elem,) in instance.tuples(t)]
        if len(labels) != 1:
            return False
        tiling[coord] = labels[0]
    if not problem.is_valid_tiling(tiling):
        return False
    # closure: the grid has no X/Y edges leaving or entering ran(gamma)
    for rel, succ in (("X", x_succ), ("Y", y_succ)):
        for a, b in instance.tuples(rel):
            if (a in cells) != (b in cells):
                return False
    # and no extra grid edges beyond the rectangle structure
    for (a, b) in instance.tuples("X"):
        if a in cells:
            found = any(gamma.get((ii, jj)) == a and gamma.get((ii + 1, jj)) == b
                        for (ii, jj) in gamma if (ii + 1, jj) in gamma)
            if not found:
                return False
    for (a, b) in instance.tuples("Y"):
        if a in cells:
            found = any(gamma.get((ii, jj)) == a and gamma.get((ii, jj + 1)) == b
                        for (ii, jj) in gamma if (ii, jj + 1) in gamma)
            if not found:
                return False
    return True
