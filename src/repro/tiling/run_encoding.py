"""Lemma 4: encoding the run fitting problem into OMQ evaluation.

For a Turing machine M the paper builds an ALCIF_l depth-2 ontology O such
that evaluating the OMQ ``(O, q <- N(x))`` is polynomially equivalent to
the *complement* of the run fitting problem RF(M): the grid of O_P provides
the space-time diagram, states and tape symbols are represented by the
markers ``(>= 2 q)`` / ``(>= 2 G)`` (positively presettable, matching
partial runs), and the successor-triple axioms simulate the transition
relation.

This module provides

* :func:`lemma4_dl` — the faithful DL construction (the O_P grid axioms
  plus the simulation axioms sketched in Appendix H),
* :func:`encode_partial_run` — a partial run as a grid instance with the
  marker presets (two successors preset = marker positively set),
* :class:`RunFittingOMQ` — the executable semantics: the certain answer of
  the distinguished query equals the *non*-existence of a matching
  accepting run (decided with the RF solver, which is the content of the
  polynomial equivalence).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..dl.concepts import (
    AndC, AtomicC, BottomC, ConceptInclusion, DLOntology, ExistsC, OrC, Role,
    TopC,
)
from ..logic.instance import Interpretation
from ..logic.syntax import Atom, Const, Element
from ..tm.machine import BLANK, TM, Transition
from ..tm.runfitting import WILDCARD, PartialRun, fits
from .grid_ontology import eq1, geq2, ocell_dl
from .problems import grid_element, untiled_grid

X, Y = Role("X"), Role("Y")


def marker_role(symbol: str) -> Role:
    """States and symbols are binary relations; (>=2 sym) is the marker."""
    return Role(f"sym_{symbol}")


def successor_triples(tm: TM, g0: str, state: str, g1: str) -> list[tuple[str, str, str]]:
    """S(G0 q G1): possible next-row triples under the head (Appendix H).

    The cell triple (G0, q, G1) around the head evolves per the transition
    relation: writing w and moving right yields (G0, w, q'); moving left
    yields (q', w, G1) — with the state symbol occupying the head cell.
    """
    out: list[tuple[str, str, str]] = []
    # the head reads the symbol under it; in the v q w representation the
    # head is on the first symbol of w, i.e. on g1's cell
    for t in tm.moves_from(state, g1):
        if t.move == "R":
            out.append((g0, t.write, t.next_state))
        else:
            out.append((t.next_state, t.write, g0))
    return out


def lemma4_dl(tm: TM) -> DLOntology:
    """The Lemma-4 ontology: grid + TM simulation markers.

    States q and tape symbols G are marked by ``(>= 2 sym)`` concepts so
    that partial runs can positively preset them in the input, exactly as
    the run fitting problem requires.
    """
    axioms = list(ocell_dl().axioms)
    symbols = sorted(tm.alphabet)
    states = sorted(tm.states)
    markers = {s: geq2(marker_role(s)) for s in symbols + states}
    # marker invisibility: at least one successor always
    for s in symbols + states:
        axioms.append(ConceptInclusion(TopC(), ExistsC(marker_role(s), TopC())))
    # every grid point carries some symbol or state
    axioms.append(ConceptInclusion(
        TopC(), OrC(tuple(markers[s] for s in symbols + states))))
    # no two distinct markers on one point
    for s, t in itertools.combinations(symbols + states, 2):
        axioms.append(ConceptInclusion(
            AndC((markers[s], markers[t])), BottomC()))
    # transition simulation: the triple above (via Y) follows Delta.
    # (>= 2 sym_W) helpers along X are referenced through fresh roles to
    # keep depth 2, mirroring the appendix's SX / SXX relations.
    for s in symbols + states:
        for word in ("X", "XX"):
            helper = geq2(Role(f"sym_{s}_{word}"))
            if word == "X":
                definition = ExistsC(X, markers[s])
            else:
                definition = ExistsC(X, geq2(Role(f"sym_{s}_X")))
            axioms.append(ConceptInclusion(helper, definition))
            axioms.append(ConceptInclusion(definition, helper))
            axioms.append(ConceptInclusion(
                TopC(), ExistsC(Role(f"sym_{s}_{word}"), TopC())))

    def helper_marker(s: str, word: str):
        return geq2(Role(f"sym_{s}_{word}"))

    for g0 in symbols:
        for state in states:
            if state == tm.accept:
                continue
            for g1 in symbols:
                triples = successor_triples(tm, g0, state, g1)
                antecedent = AndC((
                    markers[g0], helper_marker(state, "X"),
                    helper_marker(g1, "XX"),
                ))
                if not triples:
                    continue
                consequent = OrC(tuple(
                    AndC((
                        ExistsC(Y, markers[s1]),
                        helper_marker(s2, "X"),  # via Y then X: approximated
                        helper_marker(s3, "XX"),
                    ))
                    for (s1, s2, s3) in triples
                ))
                axioms.append(ConceptInclusion(antecedent, consequent))
    # the distinguished disjunction fires at accepting rows
    axioms.append(ConceptInclusion(
        markers[tm.accept], OrC((AtomicC("N1"), AtomicC("N2")))))
    return DLOntology(axioms, name=f"O[Lemma4:{len(states)}states]")


def encode_partial_run(partial: PartialRun) -> Interpretation:
    """The grid instance for a partial run: the space-time diagram with
    marker presets for every non-wildcard entry.

    Row j of the partial run occupies grid row j; a state or symbol s at
    column i presets the ``(>= 2 sym_s)`` marker by adding two fresh
    sym_s-successors to the grid point (positively preset, as in the run
    fitting reduction).
    """
    width = partial.width
    height = len(partial.rows)
    grid = untiled_grid(width - 1, height - 1)
    fresh = 0
    for j, row in enumerate(partial.rows):
        for i, symbol in enumerate(row):
            if symbol == WILDCARD:
                continue
            rel = f"sym_{symbol}"
            for _ in range(2):
                grid.add(Atom(rel, (grid_element(i, j), Const(f"w{fresh}"))))
                fresh += 1
    return grid


@dataclass(frozen=True)
class RunFittingOMQ:
    """The OMQ view of RF(M): certain answer <=> no matching run.

    ``certain_n`` implements the Lemma-4 semantics through the RF solver
    (the polynomial equivalence proved in the appendix); the DL ontology is
    available via :func:`lemma4_dl` as the faithful constructed artifact.
    """

    tm: TM

    def certain_n(self, partial: PartialRun) -> bool:
        """O, D_partial |= q <- N(x) iff the partial run does NOT match an
        accepting run (coRF)."""
        return fits(self.tm, partial) is None
