"""Turing machines, run fitting, Ladner variation, 2+2-SAT."""

from .machine import (
    BLANK, TM, Configuration, Transition, accepting_runs, accepts,
    initial_configuration, run_is_valid, successors,
)
from .runfitting import (
    WILDCARD, PartialRun, blank_partial_run, fits, matches, verify_certificate,
)
from .ladner import HFunction, PaddedLanguage, all_strings, trivial_deciders
from .twotwosat import (
    Clause22, HardnessGadget, TwoTwoSat, assignment_models, parse_22,
    random_22_formula,
)

__all__ = [
    "BLANK", "TM", "Configuration", "Transition", "accepting_runs",
    "accepts", "initial_configuration", "run_is_valid", "successors",
    "WILDCARD", "PartialRun", "blank_partial_run", "fits", "matches",
    "verify_certificate", "HFunction", "PaddedLanguage", "all_strings",
    "trivial_deciders", "Clause22", "HardnessGadget", "TwoTwoSat",
    "assignment_models", "parse_22", "random_22_formula",
]
