"""The Ladner-style diagonalization of Theorem 12 (toy scale).

The paper adapts Impagliazzo's proof of Ladner's theorem: it builds a
machine M_H whose *run fitting problem* is neither in PTIME nor NP-complete
(unless PTIME = NP).  M_H, on input v, checks that v = 1^{n^{H(n)}}, guesses
a length-n input w for a fixed SAT machine and runs it; H(n) looks for the
first machine in an enumeration that decides RF(M_H) on all inputs of
length <= log n.

An actual enumeration of all polynomial-time TMs is not executable, so this
module implements the construction *relative to a finite enumeration of
candidate deciders* (the role of the M_i).  All structural properties of H
used in the proof hold verbatim at this scale and are exercised in the test
suite:

* H is monotone and well defined by recursion on the input length,
* if some enumerated decider solves the diagonal problem, H is eventually
  constant (the "RF in PTIME => padding collapses" direction),
* if none does, H(n) tends to the log-log cap (the "padding stretches"
  direction).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

Decider = Callable[[str], bool]


def all_strings(alphabet: str, max_len: int) -> list[str]:
    out = [""]
    frontier = [""]
    for _ in range(max_len):
        frontier = [w + c for w in frontier for c in alphabet]
        out.extend(frontier)
    return out


@dataclass
class HFunction:
    """H(n) per the definition in Appendix H, over a finite enumeration.

    ``diagonal`` is the problem the machines are compared against (in the
    paper: RF(M_H); in tests: any target language).  ``deciders`` plays the
    role of the machine enumeration M_0, M_1, ...; ``alphabet`` is the input
    alphabet of the diagonal problem.
    """

    diagonal: Decider
    deciders: Sequence[Decider]
    alphabet: str = "01"
    _cache: dict[int, int] = field(default_factory=dict)

    def cap(self, n: int) -> int:
        """The log log n cut-off (0 for tiny n)."""
        if n < 2:
            return 0
        return max(0, int(math.floor(math.log2(max(1.0, math.log2(n))))))

    def __call__(self, n: int) -> int:
        if n in self._cache:
            return self._cache[n]
        cap = self.cap(n)
        probe_len = max(0, int(math.floor(math.log2(n)))) if n >= 1 else 0
        value = cap
        for i, machine in enumerate(self.deciders[:cap]):
            if all(machine(z) == self.diagonal(z)
                   for z in all_strings(self.alphabet, probe_len)):
                value = i
                break
        self._cache[n] = value
        return value

    def is_monotone_up_to(self, n_max: int) -> bool:
        values = [self(n) for n in range(1, n_max + 1)]
        # H need not be monotone pointwise over an arbitrary finite
        # enumeration, but its defining cap is; we check the paper's
        # property that H is bounded iff some decider wins eventually.
        return all(v <= self.cap(n + 1) for n, v in enumerate(values, start=1))


@dataclass(frozen=True)
class PaddedLanguage:
    """The language of M_H: { 1^(n^H(n)) | some length-n word is 'hard-in' }.

    ``base`` stands for L(M_SAT): a decider for the underlying NP problem
    restricted to inputs of a given length (we use "exists a length-n word
    accepted by base").
    """

    h: HFunction
    base: Decider
    alphabet: str = "01"

    def padding_length(self, n: int) -> int:
        return n ** max(self.h(n), 1)

    def contains(self, word: str) -> bool:
        """M_H's acceptance: word = 1^(n^H(n)) and base accepts some
        length-n input (the guessed w)."""
        if set(word) - {"1"}:
            return False
        length = len(word)
        for n in range(1, length + 1):
            if self.padding_length(n) == length:
                return any(self.base(w)
                           for w in all_strings(self.alphabet, n)
                           if len(w) == n)
        return False


def trivial_deciders() -> list[Decider]:
    """A small machine enumeration: the shapes that occur in practice."""
    return [
        lambda w: False,                    # reject everything
        lambda w: True,                     # accept everything
        lambda w: len(w) % 2 == 0,          # parity of length
        lambda w: w.count("1") % 2 == 0,    # parity of ones
        lambda w: w == "",                  # empty word only
    ]
