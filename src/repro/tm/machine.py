"""Non-deterministic Turing machines with one one-sided infinite tape.

Follows the representation of Section 7 / Appendix H: a configuration is a
string ``v q w`` (state q, tape v to the left of the head, w from the head
rightwards); runs are sequences of equal-length configurations; the
accepting state has no outgoing transitions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

BLANK = "_"


@dataclass(frozen=True)
class Transition:
    """(state, read) -> (next state, write, move) with move in {L, R}."""

    state: str
    read: str
    next_state: str
    write: str
    move: str

    def __post_init__(self) -> None:
        if self.move not in ("L", "R"):
            raise ValueError(f"move must be L or R, got {self.move!r}")


@dataclass(frozen=True)
class TM:
    """A non-deterministic Turing machine."""

    states: frozenset[str]
    alphabet: frozenset[str]
    transitions: tuple[Transition, ...]
    start: str
    accept: str

    def __init__(
        self,
        states: Iterable[str],
        alphabet: Iterable[str],
        transitions: Iterable[Transition],
        start: str,
        accept: str,
    ):
        object.__setattr__(self, "states", frozenset(states))
        object.__setattr__(self, "alphabet", frozenset(alphabet) | {BLANK})
        object.__setattr__(self, "transitions", tuple(transitions))
        object.__setattr__(self, "start", start)
        object.__setattr__(self, "accept", accept)
        for t in self.transitions:
            if t.state == self.accept:
                raise ValueError("the accepting state must have no successors")
            if t.state not in self.states or t.next_state not in self.states:
                raise ValueError(f"transition {t} uses undeclared state")

    def moves_from(self, state: str, read: str) -> list[Transition]:
        return [t for t in self.transitions
                if t.state == state and t.read == read]


@dataclass(frozen=True)
class Configuration:
    """``v q w``: tape = v + w, head on the first symbol of w.

    ``left`` and ``right`` are tuples of tape symbols; the state counts as
    a single symbol of the configuration string, so state names may be
    longer than one character.
    """

    left: tuple[str, ...]
    state: str
    right: tuple[str, ...]

    def __init__(self, left, state: str, right):
        object.__setattr__(self, "left", tuple(left))
        object.__setattr__(self, "state", state)
        object.__setattr__(self, "right", tuple(right))

    @property
    def length(self) -> int:
        return len(self.left) + 1 + len(self.right)

    def symbols(self) -> tuple[str, ...]:
        """The configuration as a symbol sequence v q w."""
        return self.left + (self.state,) + self.right

    def as_string(self) -> str:
        return "".join(self.symbols())

    def head_symbol(self) -> str:
        return self.right[0] if self.right else BLANK

    def is_accepting(self, tm: TM) -> bool:
        return self.state == tm.accept


def initial_configuration(tm: TM, word: str, space: int | None = None) -> Configuration:
    """``q0 w`` padded with blanks to the requested tape length."""
    tape = tuple(word)
    if space is not None:
        if space < len(word) + 1:
            raise ValueError("space too small for the input word")
        tape = tape + (BLANK,) * (space - len(word) - 1)
    return Configuration((), tm.start, tape)


def successors(tm: TM, config: Configuration) -> list[Configuration]:
    """All successor configurations within the same tape space.

    The tape is fixed-length (runs have equal-length configurations);
    moving right past the end or left past the start yields no successor.
    """
    out: list[Configuration] = []
    read = config.head_symbol()
    for t in tm.moves_from(config.state, read):
        if t.move == "R":
            if len(config.right) <= 1:
                continue  # would fall off the reserved tape space
            out.append(Configuration(
                config.left + (t.write,), t.next_state, config.right[1:]))
        else:
            if not config.left:
                continue  # cannot move left from the leftmost cell
            out.append(Configuration(
                config.left[:-1], t.next_state,
                (config.left[-1], t.write) + config.right[1:]))
    return out


def run_is_valid(tm: TM, run: Sequence[Configuration]) -> bool:
    """Check that consecutive configurations are related by a transition."""
    if not run:
        return False
    length = run[0].length
    for config in run:
        if config.length != length:
            return False
    for cur, nxt in zip(run, run[1:]):
        if nxt not in successors(tm, cur):
            return False
    return True


def accepting_runs(
    tm: TM,
    start: Configuration,
    max_steps: int,
) -> Iterator[list[Configuration]]:
    """Enumerate accepting runs from *start* of at most *max_steps* steps."""

    def rec(run: list[Configuration]) -> Iterator[list[Configuration]]:
        last = run[-1]
        if last.is_accepting(tm):
            yield list(run)
            return
        if len(run) > max_steps:
            return
        for nxt in successors(tm, last):
            run.append(nxt)
            yield from rec(run)
            run.pop()

    yield from rec([start])


def accepts(tm: TM, word: str, max_steps: int, space: int | None = None) -> bool:
    """Does some accepting run of at most *max_steps* steps exist?"""
    if space is None:
        space = len(word) + max_steps + 1
    start = initial_configuration(tm, word, space)
    for _ in accepting_runs(tm, start, max_steps):
        return True
    return False
