"""The run fitting problem (Definition 7/8, Theorem 12).

A *partial configuration* replaces symbols of a configuration by the
wildcard ``?``; a *partial run* is a sequence of equal-length partial
configurations.  RF(M) asks whether a given partial run matches an
accepting run of M whose first configuration is a start configuration.

``fits`` decides RF(M) by depth-first search over configurations
constrained row-by-row by the partial run — the NP brute force the paper's
reduction targets.  ``verify_certificate`` checks a claimed matching run in
polynomial time (RF(M) ∈ NP).

Rows are tuples of symbols; each symbol is a tape character, a state name,
or the wildcard ``?``.  :meth:`PartialRun.from_strings` accepts plain
strings when all symbols are single characters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..runtime import Budget
from .machine import TM, Configuration, run_is_valid, successors

WILDCARD = "?"

Row = tuple[str, ...]


@dataclass(frozen=True)
class PartialRun:
    """Rows of equal length over tape symbols + states + '?'."""

    rows: tuple[Row, ...]

    def __init__(self, rows: Sequence[Sequence[str]]):
        normalized = tuple(tuple(row) for row in rows)
        if not normalized:
            raise ValueError("a partial run needs at least one row")
        width = len(normalized[0])
        if any(len(r) != width for r in normalized):
            raise ValueError("all rows must have the same length")
        object.__setattr__(self, "rows", normalized)

    @classmethod
    def from_strings(cls, rows: Sequence[str]) -> "PartialRun":
        """Build from strings (every character is one symbol)."""
        return cls([tuple(r) for r in rows])

    @property
    def width(self) -> int:
        return len(self.rows[0])

    @property
    def steps(self) -> int:
        return len(self.rows) - 1

    def wildcard_fraction(self) -> float:
        total = len(self.rows) * self.width
        stars = sum(row.count(WILDCARD) for row in self.rows)
        return stars / total if total else 0.0


def matches(partial_row: Sequence[str], config: Configuration) -> bool:
    """Does the configuration match the partial row symbol-by-symbol?"""
    symbols = config.symbols()
    if len(symbols) != len(partial_row):
        return False
    return all(p in (WILDCARD, c) for p, c in zip(partial_row, symbols))


def _row_configurations(tm: TM, row: Row) -> Iterator[Configuration]:
    """All configurations of the row's length matching the partial row."""
    width = len(row)
    for pos in range(width):
        entry = row[pos]
        if entry != WILDCARD and entry not in tm.states:
            continue
        state_candidates = [entry] if entry in tm.states else sorted(tm.states)
        # every other position must be (or match) a tape symbol
        if any(row[i] in tm.states for i in range(width) if i != pos):
            continue
        if any(row[i] != WILDCARD and row[i] not in tm.alphabet
               for i in range(width) if i != pos):
            continue
        for state in state_candidates:
            yield from _fill_tape(tm, row, pos, state)


def _fill_tape(tm: TM, row: Row, state_pos: int, state: str) -> Iterator[Configuration]:
    alphabet = sorted(tm.alphabet)
    tape_positions = [i for i in range(len(row)) if i != state_pos]
    slots = [i for i in tape_positions if row[i] == WILDCARD]

    def rec(idx: int, tape: dict[int, str]) -> Iterator[Configuration]:
        if idx == len(slots):
            symbols = [tape.get(i, row[i]) for i in tape_positions]
            left = tuple(symbols[:state_pos])
            right = tuple(symbols[state_pos:])
            yield Configuration(left, state, right)
            return
        for ch in alphabet:
            tape[slots[idx]] = ch
            yield from rec(idx + 1, tape)
            del tape[slots[idx]]

    yield from rec(0, {})


def fits(tm: TM, partial: PartialRun,
         budget: Budget | None = None) -> list[Configuration] | None:
    """Decide RF(M): return a matching accepting run, or None.

    The first row must admit a start configuration (start state on the
    leftmost cell, per Definition 7).  Under a
    :class:`repro.runtime.Budget` every candidate extension is a
    cooperative checkpoint (the ``rf_backtracks`` fault/limit site),
    raising :class:`repro.runtime.BudgetExceeded` on exhaustion.
    """
    first = partial.rows[0]
    if first[0] not in (tm.start, WILDCARD):
        return None

    def rec(idx: int, run: list[Configuration]) -> list[Configuration] | None:
        if idx == len(partial.rows):
            if run[-1].is_accepting(tm):
                return list(run)
            return None
        row = partial.rows[idx]
        if idx == 0:
            candidates: Iterator[Configuration] = (
                c for c in _row_configurations(tm, row)
                if c.state == tm.start and not c.left)
        else:
            candidates = (
                c for c in successors(tm, run[-1]) if matches(row, c))
        for config in candidates:
            if budget is not None:
                budget.tick_backtrack("rf_backtracks")
            run.append(config)
            found = rec(idx + 1, run)
            if found is not None:
                return found
            run.pop()
        return None

    return rec(0, [])


def verify_certificate(tm: TM, partial: PartialRun,
                       run: Sequence[Configuration]) -> bool:
    """Polynomial-time verification that *run* witnesses RF(M) (NP side)."""
    if len(run) != len(partial.rows):
        return False
    if not run_is_valid(tm, run):
        return False
    if run[0].state != tm.start or run[0].left:
        return False
    if not run[-1].is_accepting(tm):
        return False
    return all(matches(row, config)
               for row, config in zip(partial.rows, run))


def blank_partial_run(width: int, steps: int,
                      start_row: Sequence[str] | None = None) -> PartialRun:
    """An all-wildcard partial run (optionally with a concrete first row)."""
    rows: list[Sequence[str]] = [
        tuple(start_row) if start_row is not None else (WILDCARD,) * width]
    rows += [(WILDCARD,) * width] * steps
    return PartialRun(rows)
