"""2+2-SAT and the Theorem-3 coNP-hardness reduction.

2+2-SAT [Schaerf 1993] is propositional satisfiability for clause sets of
the form ``(p1 ∨ p2 ∨ ¬n1 ∨ ¬n2)`` where each entry is a variable or a
truth constant.  It is NP-complete and is the base of the proof of
Theorem 3: from a failure of the disjunction property of O one builds, for
every 2+2-SAT input, an instance D_phi and an rAQ such that the formula is
unsatisfiable iff the query is certain.

This module provides the problem itself (generator, brute-force and DPLL
solvers) and the gadget construction from a two-disjunct
:class:`~repro.core.materializability.DisjunctionWitness`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

from ..core.materializability import DisjunctionWitness
from ..logic.instance import Interpretation, disjoint_union
from ..logic.syntax import Atom, Const, Element

TRUE = "true"
FALSE = "false"


@dataclass(frozen=True)
class Clause22:
    """(p1 ∨ p2 ∨ ¬n1 ∨ ¬n2); entries are variable names or constants."""

    p1: str
    p2: str
    n1: str
    n2: str

    def variables(self) -> set[str]:
        return {v for v in (self.p1, self.p2, self.n1, self.n2)
                if v not in (TRUE, FALSE)}

    def satisfied(self, assignment: dict[str, bool]) -> bool:
        def val(name: str) -> bool:
            if name == TRUE:
                return True
            if name == FALSE:
                return False
            return assignment[name]

        return (val(self.p1) or val(self.p2)
                or not val(self.n1) or not val(self.n2))


@dataclass(frozen=True)
class TwoTwoSat:
    clauses: tuple[Clause22, ...]

    def variables(self) -> list[str]:
        out: set[str] = set()
        for clause in self.clauses:
            out |= clause.variables()
        return sorted(out)

    def satisfiable(self) -> dict[str, bool] | None:
        """Brute-force satisfiability (inputs are small in tests)."""
        variables = self.variables()
        for bits in itertools.product([False, True], repeat=len(variables)):
            assignment = dict(zip(variables, bits))
            if all(c.satisfied(assignment) for c in self.clauses):
                return assignment
        return None


def parse_22(text: str) -> TwoTwoSat:
    """Parse ``p1 p2 n1 n2`` per line (variables or true/false)."""
    clauses = []
    for line in text.splitlines():
        stripped = line.split("#", 1)[0].strip()
        if not stripped:
            continue
        parts = stripped.split()
        if len(parts) != 4:
            raise ValueError(f"a 2+2 clause needs 4 entries: {stripped!r}")
        clauses.append(Clause22(*parts))
    return TwoTwoSat(tuple(clauses))


# ---------------------------------------------------------------------------
# The Theorem-3 gadget
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HardnessGadget:
    """The reduction data built from a disjunction-property failure.

    The witness provides an instance D and two query/tuple pairs with
    ``O, D |= q1(d1) v q2(d2)`` but neither disjunct certain.  For a 2+2
    formula phi, :meth:`encode` builds D_phi: one renamed copy D_v of D per
    variable v (choosing q1 at the copy = "v false", q2 = "v true"), plus
    clause atoms wiring copies to clause constants with fresh relations.
    Invariance under disjoint unions makes the copies independent, so
    models of D_phi correspond to truth assignments, and the query of
    :meth:`query_atoms` is certain iff phi is unsatisfiable.
    """

    witness: DisjunctionWitness

    def copy_of_instance(self, tag: str) -> tuple[Interpretation, dict[Element, Element]]:
        mapping = {
            e: Const(f"{tag}_{getattr(e, 'name', e)}")
            for e in self.witness.instance.dom()
        }
        return self.witness.instance.rename(mapping), mapping

    def encode(self, formula: TwoTwoSat) -> Interpretation:
        """The instance D_phi (fresh relations Cl, Pos1/2, Neg1/2).

        Besides the variable copies, two constant gadgets realize the truth
        constants: the canonical database of q1 rooted at ``false_const``
        (the 'false' choice is realized there) and of q2 at ``true_const``.
        """
        out = Interpretation()
        copies: dict[str, dict[Element, Element]] = {}
        for var in formula.variables():
            copy, mapping = self.copy_of_instance(var)
            copies[var] = mapping
            for fact in copy:
                out.add(fact)
        (q1, d1), (q2, d2) = self.witness.disjuncts
        # truth-constant gadgets
        for name, (query, anchor) in ((FALSE, (q1, d1)), (TRUE, (q2, d2))):
            db, var_map = query.canonical_database(prefix=f"{name}_")
            renaming = {var_map[query.answer_vars[0]]: Const(f"{name}_const")}
            for fact in db.rename(renaming):
                out.add(fact)
        for idx, clause in enumerate(formula.clauses):
            clause_const = Const(f"cl{idx}")
            out.add(Atom("Cl", (clause_const,)))
            for role, entry, (_, anchor) in (
                ("Pos1", clause.p1, (q1, d1)),
                ("Pos2", clause.p2, (q1, d1)),
                ("Neg1", clause.n1, (q2, d2)),
                ("Neg2", clause.n2, (q2, d2)),
            ):
                if entry in (TRUE, FALSE):
                    out.add(Atom(role, (clause_const, Const(f"{entry}_const"))))
                    continue
                # wire the clause to the anchor element of the copy
                target = copies[entry][anchor[0]]
                out.add(Atom(role, (clause_const, target)))
        return out

    def violation_query(self):
        """The Boolean CQ that is certain iff the formula is unsatisfiable.

        A clause is violated when both positive entries realize q1 (the
        'false' witness) and both negative entries realize q2 (the 'true'
        witness); in every model of an unsatisfiable formula some clause is
        violated, and conversely a satisfying assignment yields a model
        violating no clause (Theorem 3's reduction).
        """
        from ..logic.syntax import Var
        from ..queries.cq import CQ

        (q1, _), (q2, _) = self.witness.disjuncts
        atoms: list[Atom] = []
        z = Var("z")
        atoms.append(Atom("Cl", (z,)))
        taken: list[Var] = [z]
        for role, query in (("Pos1", q1), ("Pos2", q1),
                            ("Neg1", q2), ("Neg2", q2)):
            fresh = query.rename_apart(taken)
            prefix = role.lower()
            mapping = {v: Var(f"{prefix}_{v.name}") for v in fresh.variables()}
            body = {a.substitute(mapping) for a in fresh.atoms}
            anchor = mapping[fresh.answer_vars[0]]
            atoms.append(Atom(role, (z, anchor)))
            atoms.extend(body)
            taken.extend(mapping.values())
        return CQ((), atoms)


def assignment_models(
    formula: TwoTwoSat,
) -> list[dict[str, bool]]:
    """All satisfying assignments (ground truth for tests)."""
    variables = formula.variables()
    out = []
    for bits in itertools.product([False, True], repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        if all(c.satisfied(assignment) for c in formula.clauses):
            out.append(assignment)
    return out


def random_22_formula(num_vars: int, num_clauses: int, seed: int) -> TwoTwoSat:
    """A deterministic pseudo-random 2+2 formula (for benchmarks)."""
    import random

    rng = random.Random(seed)
    names = [f"v{i}" for i in range(num_vars)]
    clauses = []
    for _ in range(num_clauses):
        entries = [rng.choice(names + [TRUE, FALSE]) for _ in range(4)]
        clauses.append(Clause22(*entries))
    return TwoTwoSat(tuple(clauses))
