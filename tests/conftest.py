"""Test-suite configuration.

The engine sanitizers (:mod:`repro.analysis.sanitizers`) are switched on
for the whole suite so that every chase run and every CDCL solve executed
by the tests is invariant-checked.  Set ``REPRO_SANITIZE=0`` in the
environment to opt out (e.g. when timing the engines).
"""

import os

os.environ.setdefault("REPRO_SANITIZE", "1")
