"""Test-suite configuration.

The engine sanitizers (:mod:`repro.analysis.sanitizers`) are switched on
for the whole suite so that every chase run and every CDCL solve executed
by the tests is invariant-checked.  Set ``REPRO_SANITIZE=0`` in the
environment to opt out (e.g. when timing the engines).
"""

import os

os.environ.setdefault("REPRO_SANITIZE", "1")


import pytest


@pytest.fixture
def no_ambient_faults(monkeypatch):
    """Neutralize ``REPRO_FAULTS`` for tests that assert exact engine
    provenance (which engine answered, the ladder trace): under ambient
    fault injection (the CI fault job) those are legitimately perturbed,
    while verdicts must — and do — stay correct."""
    import repro.runtime.faults as faults
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.setattr(faults, "_cache", None)
