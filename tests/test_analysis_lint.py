"""Positive and negative tests for every OMQ0xx lint diagnostic."""

import json

import pytest

from repro.analysis import (
    Diagnostic, LintError, REGISTRY, Severity, count_by_severity, has_errors,
    lint_artifacts, lint_datalog_text, lint_ontology, lint_query_text,
    lint_sentences, render_json, render_text, sort_diagnostics,
)
from repro.logic.ontology import Ontology
from repro.logic.parser import parse_formula, parse_sentences
from repro.logic.syntax import Atom, CountExists, Var


def codes(diags):
    return {d.code for d in diags}


def lint_text(text, functional=(), inverse_functional=()):
    return lint_sentences(parse_sentences(text), functional,
                          inverse_functional)


class TestRegistry:
    def test_at_least_fifteen_codes(self):
        assert len(REGISTRY) >= 15

    def test_codes_are_stable_format(self):
        for code in REGISTRY:
            assert code.startswith("OMQ") and code[3:].isdigit()

    def test_duplicate_registration_rejected(self):
        from repro.analysis import rule

        with pytest.raises(ValueError, match="duplicate"):
            rule("OMQ001", Severity.ERROR, "sentence", "dup")(lambda s: iter(()))


class TestGuardRules:
    def test_omq001_unguarded_exists(self):
        diags = lint_text("exists z (A(z) | B(z))")
        assert "OMQ001" in codes(diags)

    def test_omq001_unguarded_forall(self):
        diags = lint_text("forall x (A(x) | B(x))")
        assert "OMQ001" in codes(diags)

    def test_omq001_negative(self):
        diags = lint_text("forall x,y (R(x,y) -> A(x))")
        assert "OMQ001" not in codes(diags)

    def test_omq002_guard_misses_body_free_var(self):
        # inner guard S(z,x) covers the quantified z but not the body's y
        diags = lint_text("forall x,y (R(x,y) -> exists z (S(z,x) & T(z,y)))")
        assert "OMQ002" in codes(diags)

    def test_omq002_negative(self):
        diags = lint_text("forall x,y (R(x,y) -> exists z (S(z,x) & A(z)))")
        assert "OMQ002" not in codes(diags)

    def test_omq007_unused_quantified_variable(self):
        diags = lint_text("exists x,y (A(x))")
        assert "OMQ007" in codes(diags)

    def test_omq007_negative(self):
        diags = lint_text("forall x,y (R(x,y) -> A(x))")
        assert "OMQ007" not in codes(diags)

    def test_omq008_shadowing(self):
        diags = lint_text("forall x (A(x) -> exists x (R(x,x)))")
        assert "OMQ008" in codes(diags)

    def test_omq008_negative(self):
        diags = lint_text("forall x (A(x) -> exists y (R(x,y)))")
        assert "OMQ008" not in codes(diags)

    def test_omq010_free_variables(self):
        diags = lint_sentences([parse_formula("A(w)")])
        assert "OMQ010" in codes(diags)

    def test_omq010_negative(self):
        diags = lint_text("forall x (A(x) -> B(x))")
        assert "OMQ010" not in codes(diags)

    def test_omq016_ternary_counting_guard(self):
        diags = lint_text("forall x (A(x) -> exists>=2 y (T(x,y,y)))")
        assert "OMQ016" in codes(diags)

    def test_omq016_guard_not_mentioning_counted_var(self):
        # not constructible through the parser (it raises), so build the AST
        x, y = Var("x"), Var("y")
        phi = CountExists(2, y, Atom("R", (x, x)), Atom("A", (y,)))
        from repro.analysis.rules_syntax import bad_counting_guard

        findings = list(bad_counting_guard(phi))
        assert findings and "does not mention" in findings[0].message

    def test_omq016_negative(self):
        diags = lint_text("forall x (A(x) -> exists>=2 y (R(x,y)))")
        assert "OMQ016" not in codes(diags)


class TestOntologyRules:
    def test_omq003_arity_clash(self):
        diags = lint_text(
            "forall x (P(x) -> A(x))\nforall x,y (P(x,y) -> B(x))")
        assert "OMQ003" in codes(diags)

    def test_omq003_negative(self):
        diags = lint_text(
            "forall x (P(x) -> A(x))\nforall x (P(x) -> B(x))")
        assert "OMQ003" not in codes(diags)

    def test_omq004_functionality_on_unary(self):
        diags = lint_text("forall x (P(x) -> A(x))", functional={"P"})
        assert "OMQ004" in codes(diags)

    def test_omq004_inverse_functional(self):
        diags = lint_text("forall x (P(x) -> A(x))",
                          inverse_functional={"P"})
        assert "OMQ004" in codes(diags)

    def test_omq004_negative(self):
        diags = lint_text("forall x,y (R(x,y) -> A(x))", functional={"R"})
        assert "OMQ004" not in codes(diags)

    def test_omq006_depth_beyond_figure1(self):
        deep = ("forall x (A(x) -> exists y (R(x,y) & "
                "exists z (S(y,z) & exists w (S(z,w) & B(w)))))")
        diags = lint_text(deep)
        assert "OMQ006" in codes(diags)

    def test_omq006_negative(self):
        diags = lint_text("forall x (A(x) -> exists y (R(x,y) & B(y)))")
        assert "OMQ006" not in codes(diags)

    def test_omq009_closed_disjunct(self):
        diags = lint_text("forall x (A(x) -> B(x) | exists y (C(y)))")
        assert "OMQ009" in codes(diags)

    def test_omq009_negative(self):
        diags = lint_text("forall x (A(x) -> B(x) | C(x))")
        assert "OMQ009" not in codes(diags)

    def test_omq015_unused_functional_relation(self):
        diags = lint_text("forall x (A(x) -> B(x))", functional={"F"})
        assert "OMQ015" in codes(diags)

    def test_omq015_negative(self):
        diags = lint_text("forall x,y (F(x,y) -> A(x))", functional={"F"})
        assert "OMQ015" not in codes(diags)

    def test_omq017_duplicate_sentence(self):
        diags = lint_text(
            "forall x (A(x) -> B(x))\nforall x (A(x) -> B(x))")
        assert "OMQ017" in codes(diags)

    def test_omq017_negative(self):
        diags = lint_text(
            "forall x (A(x) -> B(x))\nforall x (B(x) -> C(x))")
        assert "OMQ017" not in codes(diags)


class TestEqualityRule:
    def test_omq005_equality_inside_minus_ontology(self):
        diags = lint_text(
            "forall x (x = x -> (A(x) -> exists y (R(x,y) & ~(y = x))))")
        assert "OMQ005" in codes(diags)

    def test_omq005_negative_no_inner_equality(self):
        diags = lint_text("forall x (x = x -> (A(x) -> B(x)))")
        assert "OMQ005" not in codes(diags)

    def test_omq005_negative_not_a_minus_ontology(self):
        # an atomic outer guard means the ontology is not presenting as '−',
        # so inner equality is just the '=' feature, not a red flag
        diags = lint_text(
            "forall x,y (R(x,y) -> ~(x = y))")
        assert "OMQ005" not in codes(diags)


class TestQueryRules:
    def test_omq020_malformed(self):
        assert "OMQ020" in codes(lint_query_text("A(x)"))

    def test_omq020_negative(self):
        assert "OMQ020" not in codes(lint_query_text("q(x) <- A(x)"))

    def test_omq012_unbound_answer_variable(self):
        assert "OMQ012" in codes(lint_query_text("q(x) <- A(y)"))

    def test_omq012_negative(self):
        assert "OMQ012" not in codes(lint_query_text("q(x) <- A(x)"))

    def test_omq013_disconnected(self):
        assert "OMQ013" in codes(lint_query_text("q(x) <- A(x) & B(y)"))

    def test_omq013_negative(self):
        diags = lint_query_text("q(x) <- R(x,y) & B(y)")
        assert "OMQ013" not in codes(diags)

    def test_omq014_mixed_ucq_arity(self):
        diags = lint_query_text("q(x) <- A(x); q(x,y) <- R(x,y)")
        assert "OMQ014" in codes(diags)

    def test_omq014_negative(self):
        diags = lint_query_text("q(x) <- A(x); q(x) <- B(x)")
        assert "OMQ014" not in codes(diags)


class TestDatalogRules:
    def test_omq021_malformed_rule(self):
        assert "OMQ021" in codes(lint_datalog_text("P(x) Q(x)"))

    def test_omq021_negative(self):
        assert "OMQ021" not in codes(
            lint_datalog_text("goal() <- P(x)"))

    def test_omq011_unsafe_head_variable(self):
        diags = lint_datalog_text("goal(x) <- Q(y)")
        assert "OMQ011" in codes(diags)

    def test_omq011_unsafe_inequality_variable(self):
        diags = lint_datalog_text("goal(x) <- Q(x) & x != z")
        assert "OMQ011" in codes(diags)

    def test_omq011_negative(self):
        diags = lint_datalog_text("goal(x) <- Q(x) & R(x,y) & x != y")
        assert "OMQ011" not in codes(diags)

    def test_omq018_goal_in_body(self):
        diags = lint_datalog_text("goal() <- A(x)\nB(x) <- goal() & A(x)")
        assert "OMQ018" in codes(diags)

    def test_omq018_goal_never_defined(self):
        diags = lint_datalog_text("P(x) <- Q(x)")
        assert "OMQ018" in codes(diags)

    def test_omq018_negative(self):
        diags = lint_datalog_text("goal() <- A(x)")
        assert "OMQ018" not in codes(diags)


class TestCrossArtifactRule:
    SENTENCES = parse_sentences("forall x,y (R(x,y) -> A(x))")

    def test_omq019_data_clash(self):
        diags = lint_artifacts(self.SENTENCES, data_sig={"R": 3})
        assert "OMQ019" in codes(diags)

    def test_omq019_query_clash(self):
        diags = lint_artifacts(self.SENTENCES, query_text="q(x) <- A(x,y)")
        assert "OMQ019" in codes(diags)

    def test_omq019_negative(self):
        diags = lint_artifacts(
            self.SENTENCES, data_sig={"R": 2, "A": 1},
            query_text="q(x) <- R(x,y) & A(y)")
        assert "OMQ019" not in codes(diags)

    def test_omq019_source_attribution(self):
        diags = lint_artifacts(
            self.SENTENCES, data_sig={"R": 3},
            sources={"ontology": "onto.gf", "data": "db.facts"})
        clash = [d for d in diags if d.code == "OMQ019"]
        assert clash and clash[0].source == "db.facts"


class TestDriversAndRendering:
    def test_lint_ontology_clean(self):
        onto = Ontology(parse_sentences("forall x,y (R(x,y) -> A(x))"),
                        functional={"R"})
        assert lint_ontology(onto) == []

    def test_sentence_lines_attached(self):
        diags = lint_sentences(
            parse_sentences(
                "forall x (A(x) -> B(x))\nexists z (A(z) | B(z))"),
            lines=[1, 2])
        omq1 = [d for d in diags if d.code == "OMQ001"]
        assert omq1 and omq1[0].line == 2

    def test_render_text_and_counts(self):
        diags = lint_text("exists z (A(z) | B(z))")
        text = render_text(diags)
        assert "OMQ001" in text and "error" in text
        counts = count_by_severity(diags)
        assert counts["error"] >= 1
        assert has_errors(diags)

    def test_render_json_machine_readable(self):
        diags = lint_text("exists z (A(z) | B(z))")
        payload = json.loads(render_json(diags))
        assert payload["ok"] is False
        assert payload["counts"]["error"] >= 1
        entry = payload["diagnostics"][0]
        assert set(entry) == {"code", "severity", "message", "source",
                              "line", "path"}

    def test_sort_orders_by_severity_then_code(self):
        info = Diagnostic("OMQ015", Severity.INFO, "i")
        err = Diagnostic("OMQ001", Severity.ERROR, "e")
        warn = Diagnostic("OMQ006", Severity.WARNING, "w")
        assert sort_diagnostics([info, warn, err]) == [err, warn, info]

    def test_lint_error_carries_diagnostics(self):
        diags = lint_text("exists z (A(z) | B(z))")
        exc = LintError(diags)
        assert exc.diagnostics == tuple(diags)
        assert "OMQ001" in str(exc)


class TestEnginePreflight:
    def test_preflight_rejects_bad_ontology(self):
        from repro.semantics.certain import CertainEngine

        onto = Ontology([parse_formula("exists z (A(z) | B(z))")])
        with pytest.raises(LintError) as exc:
            CertainEngine(onto, preflight=True)
        assert any(d.code == "OMQ001" for d in exc.value.diagnostics)

    def test_preflight_off_by_default(self):
        from repro.semantics.certain import CertainEngine

        onto = Ontology([parse_formula("exists z (A(z) | B(z))")])
        CertainEngine(onto)  # no lint, no raise

    def test_preflight_workload_arity_clash(self):
        from repro.logic.instance import make_instance
        from repro.queries.cq import parse_cq
        from repro.semantics.certain import CertainEngine

        onto = Ontology(parse_sentences("forall x,y (R(x,y) -> A(x))"))
        engine = CertainEngine(onto, preflight=True)
        bad_data = make_instance("R(a,b,c)")
        with pytest.raises(LintError) as exc:
            engine.entails(bad_data, parse_cq("q() <- A(x)"))
        assert any(d.code == "OMQ019" for d in exc.value.diagnostics)

    def test_preflight_workload_query_clash(self):
        from repro.logic.instance import make_instance
        from repro.logic.syntax import Const
        from repro.queries.cq import parse_cq
        from repro.semantics.certain import CertainEngine

        onto = Ontology(parse_sentences("forall x,y (R(x,y) -> A(x))"))
        engine = CertainEngine(onto, preflight=True)
        assert engine.is_consistent(make_instance("R(a,b)"))
        with pytest.raises(LintError) as exc:
            engine.entails(make_instance("R(a,b)"),
                           parse_cq("q(x) <- A(x,y)"), (Const("a"),))
        assert any(d.code == "OMQ019" for d in exc.value.diagnostics)

    def test_preflight_clean_workload_evaluates(self):
        from repro.logic.instance import make_instance
        from repro.queries.cq import parse_cq
        from repro.semantics.certain import CertainEngine

        onto = Ontology(parse_sentences("forall x,y (R(x,y) -> A(x))"))
        engine = CertainEngine(onto, preflight=True)
        assert engine.entails(make_instance("R(a,b)"), parse_cq("q() <- A(x)"))


class TestOntologyEagerValidation:
    def test_arity_clash_raises(self):
        with pytest.raises(ValueError, match="arity"):
            Ontology(parse_sentences(
                "forall x (P(x) -> A(x))\nforall x,y (P(x,y) -> B(x))"))

    def test_functionality_non_binary_raises(self):
        with pytest.raises(ValueError, match="binary"):
            Ontology(parse_sentences("forall x (P(x) -> A(x))"),
                     functional={"P"})

    def test_consistent_signature_accepted(self):
        onto = Ontology(parse_sentences(
            "forall x,y (R(x,y) -> A(x))\nforall x (A(x) -> B(x))"),
            functional={"R"})
        assert len(onto) == 2


class TestParseErrorLineInfo:
    def test_parse_error_carries_line(self):
        from repro.logic.parser import ParseError, parse_sentences

        with pytest.raises(ParseError) as exc:
            parse_sentences("forall x (A(x) -> B(x))\nA(a) ->\n")
        assert exc.value.line == 2
        assert "line 2" in str(exc.value)

    def test_parse_sentences_with_lines(self):
        from repro.logic.parser import parse_sentences_with_lines

        pairs = parse_sentences_with_lines(
            "# comment\nforall x (A(x) -> B(x))\n\nforall x (B(x) -> C(x))\n")
        assert [line for _phi, line in pairs] == [2, 4]


class TestCrossArtifactRobustness:
    def test_unparseable_query_does_not_crash_artifacts_rule(self):
        sentences = parse_sentences("forall x,y (R(x,y) -> A(x))")
        diags = lint_artifacts(sentences, query_text="garbage")
        assert "OMQ020" in codes(diags)
        assert "OMQ019" not in codes(diags)

    def test_empty_query_reported_not_raised(self):
        diags = lint_artifacts((), query_text="")
        assert "OMQ020" in codes(diags)
