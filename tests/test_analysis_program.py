"""The Datalog(≠) program analyzer/optimizer (repro.analysis.program)."""

import pytest

from repro.analysis import Diagnostic, Severity, lint_datalog_text
from repro.analysis.program import (
    MAX_FASTPATH_WIDTH, analyze_program, canonicalize_rule, cartesian_rules,
    condensation, dead_rules, dependency_graph, derivable_predicates,
    goal_support, never_firing_rules, optimize_program, order_body,
    recursive_predicates, render_analysis, rule_subsumes, stratify,
    subsumed_rules, unreachable_predicates,
)
from repro.datalog import goal_answers
from repro.datalog.program import Neq, Rule, parse_program, parse_rule
from repro.logic.instance import make_instance
from repro.logic.syntax import Atom, Const, Var

CHAIN = parse_program("""
reach(x) <- start(x)
reach(y) <- reach(x) & edge(x,y)
goal(x) <- reach(x) & label(x)
""")

MESSY = parse_program("""
reach(x) <- start(x)
reach(y) <- reach(x) & edge(x,y)
goal(x) <- reach(x) & label(x)
dead_head(x) <- reach(x)
dead_body(x) <- phantom(x) & ghost(x)
goal(x) <- reach(x) & label(x) & label(x)
""")


class TestDependencyGraph:
    def test_edges_head_to_body(self):
        g = dependency_graph(CHAIN)
        assert g.edges["reach"] == frozenset({"start", "reach", "edge"})
        assert g.edges["goal"] == frozenset({"reach", "label"})

    def test_edb_idb_split(self):
        g = dependency_graph(CHAIN)
        assert g.idb == frozenset({"reach", "goal"})
        assert g.edb == frozenset({"start", "edge", "label"})

    def test_readers(self):
        g = dependency_graph(CHAIN)
        assert g.readers("reach") == frozenset({"reach", "goal"})

    def test_sccs_dependencies_first(self):
        g = dependency_graph(CHAIN)
        sccs = condensation(g)
        pos = {p: i for i, scc in enumerate(sccs) for p in scc}
        assert pos["start"] < pos["reach"] < pos["goal"]

    def test_recursive_predicates(self):
        assert recursive_predicates(CHAIN) == frozenset({"reach"})

    def test_mutual_recursion_one_scc(self):
        p = parse_program("""
            even(x) <- zero(x)
            even(y) <- odd(x) & succ(x,y)
            odd(y) <- even(x) & succ(x,y)
            goal(x) <- even(x)
        """)
        assert recursive_predicates(p) == frozenset({"even", "odd"})
        sccs = condensation(dependency_graph(p))
        assert frozenset({"even", "odd"}) in sccs

    def test_deep_program_no_recursion_limit(self):
        # Iterative Tarjan: a 5000-deep dependency chain must not blow the
        # Python recursion limit.
        rules = [parse_rule("p0(x) <- base(x)")]
        rules += [parse_rule(f"p{i}(x) <- p{i - 1}(x)")
                  for i in range(1, 5000)]
        rules.append(parse_rule("goal(x) <- p4999(x)"))
        from repro.datalog.program import Program

        program = Program(rules)
        sccs = condensation(dependency_graph(program))
        assert len(sccs) == 5002  # base + p0..p4999 + goal


class TestStratification:
    def test_rules_partitioned(self):
        strata = stratify(MESSY)
        flat = sorted(i for s in strata for i in s)
        assert flat == list(range(len(MESSY.rules)))

    def test_goal_in_last_stratum(self):
        strata = stratify(CHAIN)
        assert 2 in strata[-1]

    def test_strata_read_only_earlier_levels(self):
        strata = stratify(MESSY)
        level_of = {}
        for level, stratum in enumerate(strata):
            for idx in stratum:
                level_of[MESSY.rules[idx].head.pred] = level
        for level, stratum in enumerate(strata):
            for idx in stratum:
                for lit in MESSY.rules[idx].body:
                    if isinstance(lit, Atom) and lit.pred in level_of:
                        assert level_of[lit.pred] <= level

    def test_stratified_evaluation_same_fixpoint(self):
        D = make_instance("start(a)", "edge(a,b)", "edge(b,c)", "label(c)")
        strata = stratify(MESSY)
        assert goal_answers(MESSY, D, strata=strata) == goal_answers(MESSY, D)


class TestDeadRules:
    def test_goal_unreachable_head_is_dead(self):
        assert 3 in dead_rules(MESSY)

    def test_underivable_body_is_dead(self):
        assert 4 in dead_rules(MESSY)

    def test_live_rules_not_dead(self):
        dead = dead_rules(MESSY)
        for idx in (0, 1, 2):
            assert idx not in dead

    def test_never_firing_neq(self):
        p = parse_program("goal(x) <- start(x) & x != x")
        assert never_firing_rules(p) == (0,)
        assert dead_rules(p) == (0,)

    def test_unreachable_predicates(self):
        assert set(unreachable_predicates(MESSY)) == {"dead_head", "dead_body"}

    def test_derivable_respects_rule_chains(self):
        derivable = derivable_predicates(MESSY)
        assert "reach" in derivable
        # EDB-only-instance convention: phantom/ghost may hold facts, so
        # dead_body is derivable — it dies to goal-unreachability instead.
        assert "dead_body" in derivable

    def test_self_recursive_only_predicate_underivable(self):
        p = parse_program("""
            loop(x) <- loop(x)
            goal(x) <- loop(x)
        """)
        assert "loop" not in derivable_predicates(p)
        assert set(dead_rules(p)) == {0, 1}

    def test_goal_support_backward_closure(self):
        assert goal_support(CHAIN) == frozenset(
            {"goal", "reach", "label", "start", "edge"})


class TestCanonicalization:
    def test_duplicate_literal_dropped(self):
        r = parse_rule("goal(x) <- a(x) & a(x) & b(x)")
        assert len(canonicalize_rule(r).body) == 2

    def test_symmetric_neq_deduped(self):
        x, y = Var("x"), Var("y")
        r = Rule(Atom("goal", (x,)),
                 [Atom("r", (x, y)), Neq(x, y), Neq(y, x)])
        assert len(canonicalize_rule(r).body) == 2

    def test_constant_tautology_dropped(self):
        r = parse_rule("goal(x) <- a(x) & $u != $v")
        assert canonicalize_rule(r).body == (parse_rule("goal(x) <- a(x)").body[0],)

    def test_unsatisfiable_neq_kept(self):
        # x != x makes the rule dead; canonicalization must not hide that.
        r = parse_rule("goal(x) <- a(x) & x != x")
        assert len(canonicalize_rule(r).body) == 2

    def test_identity_when_clean(self):
        r = parse_rule("goal(x) <- a(x) & b(x)")
        assert canonicalize_rule(r) is r


class TestSubsumption:
    def test_instance_subsumed_by_general(self):
        general = parse_rule("p(x) <- e(x,y)")
        specific = parse_rule("p(x) <- e(x,x)")
        assert rule_subsumes(general, specific)
        assert not rule_subsumes(specific, general)

    def test_longer_body_subsumed(self):
        general = parse_rule("p(x) <- a(x)")
        specific = parse_rule("p(x) <- a(x) & b(x)")
        assert rule_subsumes(general, specific)

    def test_different_heads_not_subsumed(self):
        assert not rule_subsumes(parse_rule("p(x) <- a(x)"),
                                 parse_rule("q(x) <- a(x)"))

    def test_alpha_equivalent_keeps_first(self):
        p = parse_program("""
            goal(x) <- a(x) & b(x)
            goal(z) <- a(z) & b(z)
        """)
        assert subsumed_rules(p) == ((1, 0),)

    def test_neq_matched_up_to_symmetry(self):
        p = parse_program("""
            goal(x) <- r(x,y) & x != y
            goal(x) <- r(x,x) & a(x) & x != x
        """)
        # general rule's Neq(x,y) maps to Neq(x,x): present (reversed == same)
        assert (1, 0) in subsumed_rules(p)

    def test_subsumption_in_messy(self):
        assert subsumed_rules(MESSY) == ((5, 2),)


class TestBodyOrdering:
    def test_bound_vars_first(self):
        r = parse_rule("goal(x) <- big(y,z) & has(x,y) & label(x)")
        ordered = order_body(r)
        preds = [lit.pred for lit in ordered.body]
        assert preds == ["label", "has", "big"]

    def test_constants_most_selective(self):
        r = parse_rule("goal(x) <- a(x) & r($c,x)")
        ordered = order_body(r)
        assert ordered.body[0].pred == "r"

    def test_neqs_stay_last(self):
        r = parse_rule("goal(x) <- b(y,x) & x != y & a(x)")
        ordered = order_body(r)
        assert isinstance(ordered.body[-1], Neq)

    def test_identity_when_already_ordered(self):
        r = parse_rule("goal(x) <- a(x) & r(x,y)")
        assert order_body(r) is r

    def test_reordering_preserves_answers(self):
        p = parse_program("goal(x) <- big(y,z) & has(x,y) & label(x)")
        reordered = parse_program("")
        from repro.datalog.program import Program

        reordered = Program([order_body(r) for r in p.rules])
        D = make_instance("big(b,c)", "has(a,b)", "label(a)", "big(q,q)")
        assert goal_answers(p, D) == goal_answers(reordered, D)

    def test_cartesian_detection(self):
        p = parse_program("""
            goal(x) <- a(x) & b(y)
            fine(x) <- a(x) & r(x,y)
            goal(x) <- a(x) & r($c,$d)
        """)
        assert cartesian_rules(p) == (0,)


class TestAnalyzeProgram:
    def test_admissible_clean_program(self):
        report = analyze_program(CHAIN)
        assert report.admissible
        assert report.reasons == ()
        assert report.goal_defined
        assert report.pure_datalog
        assert report.range_restricted

    def test_report_dimensions(self):
        report = analyze_program(MESSY)
        assert report.rules == 6
        assert report.dead == (3, 4)
        assert report.subsumed == ((5, 2),)
        assert report.duplicate_literals == (5,)
        assert report.recursive == ("reach",)

    def test_no_goal_rule_inadmissible(self):
        report = analyze_program(parse_program("p(x) <- a(x)"))
        assert not report.admissible
        assert any("no defining rule" in r for r in report.reasons)

    def test_empty_program_inadmissible(self):
        report = analyze_program(parse_program(""))
        assert not report.admissible

    def test_width_bound(self):
        body = " & ".join(f"e(x{i},x{i + 1})"
                          for i in range(MAX_FASTPATH_WIDTH + 1))
        report = analyze_program(parse_program(f"goal(x0) <- {body}"))
        assert not report.admissible
        assert any("width" in r for r in report.reasons)

    def test_all_goal_rules_dead_inadmissible(self):
        report = analyze_program(parse_program(
            "goal(x) <- start(x) & x != x"))
        assert not report.admissible
        assert any("dead" in r for r in report.reasons)

    def test_to_dict_round_trips_json(self):
        import json

        payload = json.dumps(analyze_program(MESSY).to_dict())
        assert "dead_rules" in json.loads(payload)


class TestOptimizeProgram:
    def test_removes_dead_and_subsumed(self):
        result = optimize_program(MESSY)
        assert set(result.removed) == {3, 4, 5}
        assert len(result.program.rules) == 3

    def test_cascading_dead_rules(self):
        # Removing the goal-unreachable consumer orphans its producer chain.
        p = parse_program("""
            goal(x) <- start(x)
            a(x) <- start(x) & ghost(x)
            b(x) <- a(x)
        """)
        result = optimize_program(p)
        assert set(result.removed) == {1, 2}

    def test_goal_facts_preserved(self):
        D = make_instance("start(a)", "edge(a,b)", "edge(b,c)", "label(c)",
                          "label(a)", "phantom(p)")
        result = optimize_program(MESSY)
        assert (goal_answers(result.program, D, strata=result.strata)
                == goal_answers(MESSY, D))

    def test_kept_maps_to_original_indexes(self):
        result = optimize_program(MESSY)
        assert result.kept == (0, 1, 2)

    def test_strata_index_optimized_program(self):
        result = optimize_program(MESSY)
        flat = sorted(i for s in result.strata for i in s)
        assert flat == list(range(len(result.program.rules)))

    def test_render_analysis_mentions_everything(self):
        result = optimize_program(MESSY)
        text = render_analysis(MESSY, result)
        assert "dependency graph" in text
        assert "strata" in text
        assert "dead rules: 2" in text
        assert "subsumed" in text


class TestDiagnosticCodeValidation:
    """Satellite: the code guard must enforce OMQ\\d{3}, not a prefix."""

    def test_omq0xx_accepted(self):
        Diagnostic("OMQ001", Severity.ERROR, "m")

    def test_omq1xx_accepted(self):
        Diagnostic("OMQ101", Severity.WARNING, "m")

    def test_prefix_only_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("OMQBAD", Severity.ERROR, "m")

    def test_too_many_digits_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("OMQ0001", Severity.ERROR, "m")

    def test_missing_prefix_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("X101", Severity.ERROR, "m")


class TestProgramLintRules:
    """The OMQ1xx rules surface the analyzer through lint_datalog_text."""

    TEXT = """goal(x) <- reach(x) & label(x)
reach(x) <- start(x)
reach(y) <- reach(x) & edge(x,y)
util(x) <- start(x)
goal(x) <- reach(x) & label(x) & label(x)
pair(x,y) <- left(x) & right(y)
never(x) <- start(x) & x != x
taut(x) <- start(x) & $a != $b
"""

    def codes(self, text=None):
        return {(d.code, d.severity) for d in lint_datalog_text(text or self.TEXT)}

    def test_dead_rule_omq101(self):
        assert ("OMQ101", Severity.WARNING) in self.codes()

    def test_unreachable_predicate_omq102(self):
        diags = lint_datalog_text(self.TEXT)
        assert any(d.code == "OMQ102" and "util" in d.message for d in diags)

    def test_subsumed_omq103(self):
        diags = lint_datalog_text(self.TEXT)
        assert any(d.code == "OMQ103" and d.line == 5 for d in diags)

    def test_duplicate_literal_omq104(self):
        assert ("OMQ104", Severity.WARNING) in self.codes()

    def test_cartesian_omq105(self):
        diags = lint_datalog_text(self.TEXT)
        assert any(d.code == "OMQ105" and d.line == 6 for d in diags)

    def test_degenerate_neq_omq106_both_severities(self):
        sev = {d.severity for d in lint_datalog_text(self.TEXT)
               if d.code == "OMQ106"}
        assert sev == {Severity.WARNING, Severity.INFO}

    def test_clean_program_no_omq1xx(self):
        clean = "goal(x) <- reach(x)\nreach(x) <- start(x)\n"
        assert not {c for c, _ in self.codes(clean) if c >= "OMQ100"}

    def test_malformed_text_skipped_quietly(self):
        # OMQ021/OMQ011 own malformed input; the analyzer rules must not
        # crash or double-report.
        diags = lint_datalog_text("goal(x <- ???")
        assert all(d.code < "OMQ100" for d in diags)

    def test_unsafe_rule_skipped_by_analyzer_rules(self):
        # OMQ101-106 (strict-parse analyses) skip unsafe text; OMQ107
        # reports the unsafe inequality so the skip is not silent.
        diags = lint_datalog_text("goal(x) <- x != y")
        codes = {d.code for d in diags if d.code >= "OMQ100"}
        assert codes == {"OMQ107"}

    def test_unsafe_inequality_flagged_omq107(self):
        diags = lint_datalog_text(
            "I(x) <- E(x)\ngoal(x) <- I(x) & x != y")
        hits = [d for d in diags if d.code == "OMQ107"]
        assert len(hits) == 1
        assert hits[0].line == 2
        assert "y" in hits[0].message
        # Safe programs stay silent.
        clean = lint_datalog_text("goal(x) <- E(x, y) & x != y")
        assert not [d for d in clean if d.code == "OMQ107"]

    def test_example_program_file_expected_codes(self):
        from pathlib import Path

        text = Path(__file__).parent.parent.joinpath(
            "examples/programs/reachability.dlog").read_text()
        codes = {d.code for d in lint_datalog_text(text)}
        assert {"OMQ101", "OMQ102", "OMQ103", "OMQ104", "OMQ105"} <= codes
