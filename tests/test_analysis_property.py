"""Property-based tests for the linter (hypothesis).

Well-formed uGF/uGC2 sentences generated from a guarded grammar must lint
without error-level diagnostics; targeted mutations — dropping a guard,
removing a quantified variable from a guard, perturbing a predicate's
arity — must be flagged with the expected OMQ0xx code.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis import Severity, has_errors, lint_sentences
from repro.logic.syntax import (
    Atom, CountExists, Exists, Forall, Formula, Not, Or, Top, Var,
)

UNARY = ["A", "B", "C"]
BINARY = ["R", "S"]

x, y = Var("px"), Var("py")


@st.composite
def guarded_sentences(draw) -> Formula:
    """Well-formed uGF/uGC2 sentences: unary preds always unary, binary
    preds always binary, every quantifier guarded and covering."""
    a1 = draw(st.sampled_from(UNARY))
    a2 = draw(st.sampled_from(UNARY))
    r = draw(st.sampled_from(BINARY))
    shape = draw(st.integers(0, 5))
    if shape == 0:
        body: Formula = Atom(a2, (x,))
    elif shape == 1:
        body = Exists((y,), Atom(r, (x, y)), Atom(a2, (y,)))
    elif shape == 2:
        body = Or.of(Atom(a1, (x,)), Atom(a2, (x,)))
    elif shape == 3:
        body = Exists((y,), Atom(r, (x, y)), Top())
    elif shape == 4:
        body = Not(Atom(a2, (x,)))
    else:
        body = CountExists(2, y, Atom(r, (x, y)), Atom(a2, (y,)))
    return Forall((x,), Atom(a1, (x,)), body)


@st.composite
def existential_sentences(draw) -> Formula:
    """forall px (A1(px) -> exists py (R(px,py) & A2(py)))."""
    a1 = draw(st.sampled_from(UNARY))
    a2 = draw(st.sampled_from(UNARY))
    r = draw(st.sampled_from(BINARY))
    return Forall((x,), Atom(a1, (x,)),
                  Exists((y,), Atom(r, (x, y)), Atom(a2, (y,))))


def error_codes(diags):
    return {d.code for d in diags if d.severity is Severity.ERROR}


def drop_first_guard(phi: Formula) -> Formula:
    """Remove the guard of the outermost quantifier."""
    assert isinstance(phi, Forall)
    return Forall(phi.vars, None, phi.body)


class TestWellFormedLintClean:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(guarded_sentences(), min_size=1, max_size=4))
    def test_no_error_diagnostics(self, sentences):
        diags = lint_sentences(sentences)
        assert not has_errors(diags), [d.render() for d in diags]

    @settings(max_examples=30, deadline=None)
    @given(existential_sentences())
    def test_existential_shape_is_fully_clean(self, sentence):
        assert lint_sentences([sentence]) == []


class TestMutationsAreFlagged:
    @settings(max_examples=40, deadline=None)
    @given(guarded_sentences())
    def test_dropped_guard_yields_omq001(self, sentence):
        mutated = drop_first_guard(sentence)
        diags = lint_sentences([mutated])
        assert "OMQ001" in error_codes(diags)

    @settings(max_examples=40, deadline=None)
    @given(existential_sentences())
    def test_guard_var_removed_yields_omq002(self, sentence):
        inner = sentence.body
        assert isinstance(inner, Exists)
        # R(px,py) -> R(px,px): the guard no longer covers py
        broken_guard = Atom(inner.guard.pred, (x, x))
        mutated = Forall(sentence.vars, sentence.guard,
                         Exists(inner.vars, broken_guard, inner.body))
        diags = lint_sentences([mutated])
        assert "OMQ002" in error_codes(diags)

    @settings(max_examples=40, deadline=None)
    @given(existential_sentences())
    def test_arity_perturbation_yields_omq003(self, sentence):
        # a second sentence using the guard predicate at arity 2
        unary_pred = sentence.guard.pred
        clash = Forall((x,), Atom(unary_pred, (x, x)), Top())
        diags = lint_sentences([sentence, clash])
        assert "OMQ003" in error_codes(diags)

    @settings(max_examples=40, deadline=None)
    @given(existential_sentences())
    def test_mutations_flip_has_errors(self, sentence):
        assert not has_errors(lint_sentences([sentence]))
        assert has_errors(lint_sentences([drop_first_guard(sentence)]))
