"""Sanitizer tests: green paths plus one seeded violation per checker.

The seeded tests corrupt engine state by hand and call the checker
directly, proving that each invariant check actually fires — a sanitizer
that never raises is indistinguishable from one that checks nothing.
"""

import pytest

from repro.analysis.sanitizers import (
    CdclSanitizer, ChaseSanitizer, SanitizerError, cdcl_sanitizer,
    chase_sanitizer, sanitize_enabled,
)
from repro.logic.instance import make_instance
from repro.logic.ontology import ontology
from repro.logic.syntax import Atom, Const, Null, Var
from repro.semantics.cdcl import Solver
from repro.semantics.chase import Branch, chase
from repro.semantics.rules import DisjunctiveRule, Head


class TestEnablement:
    def test_explicit_flag_wins(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert sanitize_enabled(True) is True
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize_enabled(False) is False

    def test_env_var_parsing(self, monkeypatch):
        for value, expected in [("1", True), ("true", True), ("ON", True),
                                ("0", False), ("", False), ("no", False)]:
            monkeypatch.setenv("REPRO_SANITIZE", value)
            assert sanitize_enabled() is expected

    def test_factories_return_none_when_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert chase_sanitizer(None) is None
        assert cdcl_sanitizer(None) is None
        assert isinstance(chase_sanitizer(True), ChaseSanitizer)
        assert isinstance(cdcl_sanitizer(True), CdclSanitizer)


x, y = Var("x"), Var("y")


def _branch(*facts):
    interp = make_instance(*facts)
    return Branch(interp=interp.copy(),
                  depth={e: 0 for e in interp.dom()})


class TestChaseSanitizer:
    san = ChaseSanitizer()

    def test_check_firing_green(self):
        rule = DisjunctiveRule((Atom("A", (x,)),),
                               (Head((Atom("B", (x,)),), ()),))
        branch = _branch("A(a)")
        self.san.check_firing(rule, branch.interp, {x: Const("a")})

    def test_check_firing_seeded_violation(self):
        # firing although the head is already satisfied: not restricted
        rule = DisjunctiveRule((Atom("A", (x,)),),
                               (Head((Atom("B", (x,)),), ()),))
        branch = _branch("A(a)", "B(a)")
        with pytest.raises(SanitizerError, match="restricted-chase"):
            self.san.check_firing(rule, branch.interp, {x: Const("a")})

    def test_check_firing_existential_head_green(self):
        rule = DisjunctiveRule((Atom("A", (x,)),),
                               (Head((Atom("R", (x, y)),), (y,)),))
        branch = _branch("A(a)")
        self.san.check_firing(rule, branch.interp, {x: Const("a")})
        branch.interp.add(Atom("R", (Const("a"), Const("b"))))
        with pytest.raises(SanitizerError):
            self.san.check_firing(rule, branch.interp, {x: Const("a")})

    def test_null_depths_green(self):
        branch = _branch("A(a)")
        n = branch.fresh_null(1)
        branch.interp.add(Atom("A", (n,)))
        self.san.check_null_depths(branch, max_depth=3)

    def test_null_without_depth_seeded(self):
        branch = _branch("A(a)")
        branch.interp.add(Atom("A", (Null("ghost"),)))  # no depth recorded
        with pytest.raises(SanitizerError, match="no recorded creation depth"):
            self.san.check_null_depths(branch)

    def test_constant_with_nonzero_depth_seeded(self):
        branch = _branch("A(a)")
        branch.depth[Const("a")] = 2
        with pytest.raises(SanitizerError, match="expected 0"):
            self.san.check_null_depths(branch)

    def test_null_beyond_bound_seeded(self):
        branch = _branch("A(a)")
        n = branch.fresh_null(7)
        branch.interp.add(Atom("A", (n,)))
        with pytest.raises(SanitizerError, match="beyond the chase bound"):
            self.san.check_null_depths(branch, max_depth=3)

    def test_egd_green(self):
        onto = ontology("forall x,y (R(x,y) -> A(x))", functional=["R"])
        branch = _branch("R(a,b)")
        self.san.check_egd_consistency(branch, onto)

    def test_egd_violation_seeded(self):
        onto = ontology("forall x,y (R(x,y) -> A(x))", functional=["R"])
        branch = _branch("R(a,b)", "R(a,c)")  # a has two R-successors
        with pytest.raises(SanitizerError, match="EGD violation"):
            self.san.check_egd_consistency(branch, onto)

    def test_egd_inverse_functional_seeded(self):
        onto = ontology("forall x,y (R(x,y) -> A(x))")
        onto = type(onto)(onto.sentences, inverse_functional=["R"])
        branch = _branch("R(b,a)", "R(c,a)")
        with pytest.raises(SanitizerError, match="EGD violation"):
            self.san.check_egd_consistency(branch, onto)

    def test_chase_green_end_to_end(self):
        onto = ontology(
            "forall x (A(x) -> exists y (R(x,y) & B(y)))\n"
            "forall x,y (R(x,y) -> C(x))",
            functional=["R"])
        result = chase(onto, make_instance("A(a)"), sanitize=True)
        assert result.is_consistent


class TestCdclSanitizer:
    san = CdclSanitizer()

    def _solver(self, num_vars=3, clauses=((1, 2, 3),)):
        return Solver(num_vars, [list(c) for c in clauses], sanitize=False)

    # -- watches

    def test_watches_green(self):
        self.san.check_watches(self._solver())

    def test_watches_wrong_literal_seeded(self):
        solver = self._solver()
        # move a watch to a literal that is not one of the first two
        solver.watches[-1].remove(0)
        solver.watches.setdefault(-3, []).append(0)
        with pytest.raises(SanitizerError, match="two-watched-literal"):
            self.san.check_watches(solver)

    def test_watches_stray_index_seeded(self):
        solver = self._solver()
        solver.watches.setdefault(-2, []).append(99)
        with pytest.raises(SanitizerError, match="unknown clause indices"):
            self.san.check_watches(solver)

    def test_watches_short_clause_seeded(self):
        solver = self._solver()
        solver.clauses.append([1])
        with pytest.raises(SanitizerError, match="length 1"):
            self.san.check_watches(solver)

    # -- trail

    def test_trail_green(self):
        solver = self._solver(2, [(1, 2), (-1, 2)])
        solver.trail_lim.append(len(solver.trail))
        assert solver._enqueue(-1, None)
        assert solver._propagate() is None  # forces 2 via (1, 2)
        self.san.check_trail(solver)

    def test_trail_duplicate_var_seeded(self):
        solver = self._solver()
        solver.assign[1] = 1
        solver.trail = [1, 1]
        with pytest.raises(SanitizerError, match="assigned twice"):
            self.san.check_trail(solver)

    def test_trail_false_literal_seeded(self):
        solver = self._solver()
        solver.assign[1] = -1
        solver.trail = [1]
        with pytest.raises(SanitizerError, match="evaluate to true"):
            self.san.check_trail(solver)

    def test_trail_level_mismatch_seeded(self):
        solver = self._solver()
        solver.assign[1] = 1
        solver.level[1] = 3  # but no decision was taken
        solver.trail = [1]
        with pytest.raises(SanitizerError, match="trail level"):
            self.san.check_trail(solver)

    def test_trail_non_propagating_reason_seeded(self):
        solver = self._solver()
        solver.assign[1] = 1
        solver.assign[2] = 1
        solver.trail = [1, 2]
        solver.reason[2] = [2, 1]  # literal 1 is true, so not propagating
        with pytest.raises(SanitizerError, match="not propagating"):
            self.san.check_trail(solver)

    def test_trail_reason_missing_literal_seeded(self):
        solver = self._solver()
        solver.assign[1] = 1
        solver.trail = [1]
        solver.reason[1] = [2, 3]
        with pytest.raises(SanitizerError, match="does not contain"):
            self.san.check_trail(solver)

    def test_trail_assigned_but_absent_seeded(self):
        solver = self._solver()
        solver.assign[2] = -1  # never enqueued
        with pytest.raises(SanitizerError, match="absent from the trail"):
            self.san.check_trail(solver)

    # -- learned clauses

    def _learned_state(self):
        solver = self._solver(3, [(1, 2, 3),])
        solver.trail_lim.append(0)
        solver._enqueue(-2, None)   # decision at level 1
        return solver

    def test_learned_green(self):
        solver = self._learned_state()
        self.san.check_learned(solver, [1, 2], 1)

    def test_learned_duplicate_var_seeded(self):
        solver = self._learned_state()
        with pytest.raises(SanitizerError, match="twice"):
            self.san.check_learned(solver, [1, -1], 0)

    def test_learned_asserting_literal_assigned_seeded(self):
        solver = self._learned_state()
        with pytest.raises(SanitizerError, match="already assigned"):
            self.san.check_learned(solver, [-2, 1], 0)

    def test_learned_other_literal_not_false_seeded(self):
        solver = self._learned_state()
        with pytest.raises(SanitizerError, match="not false"):
            self.san.check_learned(solver, [1, 3], 0)

    def test_learned_wrong_backjump_level_seeded(self):
        solver = self._learned_state()
        with pytest.raises(SanitizerError, match="assertion level"):
            self.san.check_learned(solver, [1, 2], 0)  # should be 1

    # -- model

    def test_model_green(self):
        solver = self._solver(2, [(1, 2)])
        solver.assign[1] = 1
        solver.assign[2] = -1
        self.san.check_model(solver)

    def test_model_unassigned_seeded(self):
        solver = self._solver(2, [(1, 2)])
        solver.assign[1] = 1
        with pytest.raises(SanitizerError, match="unassigned"):
            self.san.check_model(solver)

    def test_model_falsified_clause_seeded(self):
        solver = self._solver(2, [(1, 2)])
        solver.assign[1] = -1
        solver.assign[2] = -1
        with pytest.raises(SanitizerError, match="falsifies clause"):
            self.san.check_model(solver)

    # -- end to end

    def test_solver_green_with_conflicts(self):
        # needs learning: the all-False default assignment conflicts
        clauses = [[1, 2], [-1, 2], [1, -2], [2, 3], [-3, 1]]
        model = Solver(3, clauses, sanitize=True).solve()
        assert model is not None
        assert model[1] and model[2]

    def test_solver_green_unsat(self):
        clauses = [[1, 2], [-1, 2], [1, -2], [-1, -2]]
        assert Solver(2, clauses, sanitize=True).solve() is None
