"""Tests for the synthetic BioPortal corpus and its analysis (E2)."""

import pytest

from repro.bioportal import (
    CorpusOntology, CorpusSpec, alchif_view, alchiq_view, analyze_corpus,
    generate_corpus,
)
from repro.dl.concepts import AtLeastC, ConceptInclusion, iter_subconcepts


class TestGeneration:
    def test_size(self):
        corpus = generate_corpus()
        assert len(corpus) == 411

    def test_deterministic(self):
        c1 = generate_corpus()
        c2 = generate_corpus()
        assert [e.name for e in c1] == [e.name for e in c2]
        assert [e.tbox.depth() for e in c1] == [e.tbox.depth() for e in c2]

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            CorpusSpec(total=10, alchiq_depth1=5, alchif_depth2_extra=1, deep=1)

    def test_custom_spec(self):
        spec = CorpusSpec(total=20, alchiq_depth1=15,
                          alchif_depth2_extra=3, deep=2, seed=7)
        corpus = generate_corpus(spec)
        assert len(corpus) == 20


class TestAnalysis:
    def setup_method(self):
        self.corpus = generate_corpus()
        self.report = analyze_corpus(self.corpus)

    def test_headline_numbers_match_paper(self):
        """The paper: 411 ontologies; 405 in ALCHIF depth <= 2;
        385 in ALCHIQ depth 1."""
        assert self.report.total == 411
        assert self.report.alchif_depth2 == 405
        assert self.report.alchiq_depth1 == 385

    def test_dichotomy_band_covers_alchif(self):
        assert self.report.dichotomy_band >= self.report.alchif_depth2

    def test_rows_format(self):
        rows = self.report.rows()
        assert all(len(r) == 3 for r in rows)
        assert rows[0][1] == 411

    def test_alchif_view_strips_counting(self):
        for entry in self.corpus:
            view = alchif_view(entry)
            for axiom in view.axioms:
                if isinstance(axiom, ConceptInclusion):
                    for concept in (axiom.lhs, axiom.rhs):
                        assert not any(
                            isinstance(s, AtLeastC)
                            for s in iter_subconcepts(concept))

    def test_alchiq_view_keeps_tbox(self):
        entry = self.corpus[0]
        assert alchiq_view(entry) is entry.tbox
