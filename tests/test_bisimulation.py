"""Tests for (counting) connected guarded bisimulations (Appendix C)."""

import itertools

import pytest

from repro.guarded.bisimulation import (
    are_guarded_bisimilar, coarsest_guarded_bisimulation, guarded_tuples,
    is_partial_isomorphism,
)
from repro.guarded.unravel import unravel
from repro.logic.instance import make_instance
from repro.logic.model_check import evaluate
from repro.logic.parser import parse_formula
from repro.logic.syntax import Const, Var

a, b, c = Const("a"), Const("b"), Const("c")

C3 = make_instance("R(a,b)", "R(b,c)", "R(c,a)")
C6 = make_instance(*(f"R(u{i},u{(i+1) % 6})" for i in range(6)))
CHAIN = make_instance("R(p,q)", "R(q,r)")


class TestBasics:
    def test_guarded_tuples_include_singletons(self):
        tuples = guarded_tuples(make_instance("R(a,b)"))
        assert (a,) in tuples and (a, b) in tuples and (b, a) in tuples

    def test_partial_isomorphism(self):
        d1 = make_instance("R(a,b)")
        d2 = make_instance("R(u,v)")
        u, v = Const("u"), Const("v")
        assert is_partial_isomorphism(d1, d2, (a, b), (u, v))
        assert not is_partial_isomorphism(d1, d2, (a, b), (v, u))

    def test_partial_isomorphism_requires_injectivity(self):
        d1 = make_instance("R(a,b)")
        d2 = make_instance("R(u,u)")
        u = Const("u")
        assert not is_partial_isomorphism(d1, d2, (a, b), (u, u))


class TestBisimilarity:
    def test_cycles_of_different_length(self):
        """All R-cycles look alike to openGF: bisimilar."""
        assert are_guarded_bisimilar(C3, [a], C6, [Const("u0")])

    def test_cycle_vs_chain(self):
        """The chain's endpoint has no successor: not bisimilar."""
        assert not are_guarded_bisimilar(C3, [a], CHAIN, [Const("r")])
        assert not are_guarded_bisimilar(C3, [a], CHAIN, [Const("p")])

    def test_labels_distinguish(self):
        d1 = make_instance("R(a,b)", "A(b)")
        d2 = make_instance("R(u,v)", "B(v)")
        assert not are_guarded_bisimilar(d1, [a], d2, [Const("u")])

    def test_reflexivity(self):
        assert are_guarded_bisimilar(C3, [a], C3, [a])

    def test_symmetry(self):
        assert are_guarded_bisimilar(C6, [Const("u0")], C3, [a])

    def test_pair_tuples(self):
        assert are_guarded_bisimilar(C3, [a, b], C6, [Const("u0"), Const("u1")])

    def test_unravelling_is_bisimilar_to_original(self):
        """Lemma 1's forest models are guarded bisimilar to the original
        at the copied guarded tuples (here on an acyclic instance, where
        the bounded unravelling is already complete)."""
        tree = make_instance("R(a,b)", "S(b,c)")
        unravelling = unravel(tree, depth=3)
        g = frozenset((a, b))
        copy = unravelling.copy_of((a, b), g)
        assert are_guarded_bisimilar(
            tree, (a, b), unravelling.interpretation, copy)


class TestCountingBisimilarity:
    def test_successor_counts_matter(self):
        one = make_instance("R(a,b)")
        two = make_instance("R(u,v)", "R(u,w)")
        assert are_guarded_bisimilar(one, [a], two, [Const("u")])
        assert not are_guarded_bisimilar(one, [a], two, [Const("u")],
                                         counting=True)

    def test_equal_counts_accepted(self):
        two1 = make_instance("R(a,b)", "R(a,c)")
        two2 = make_instance("R(u,v)", "R(u,w)")
        assert are_guarded_bisimilar(two1, [a], two2, [Const("u")],
                                     counting=True)


class TestTheorem15:
    """Bisimilar points must agree on openGF formulas."""

    FORMULAS = [
        "exists y (R(x,y) & exists x (R(y,x)))",
        "exists y (R(x,y) & ~A(y))",
        "exists y (R(y,x))",
        "A(x)",
    ]

    @pytest.mark.parametrize("text", FORMULAS)
    def test_invariance_cycle_pair(self, text):
        phi = parse_formula(text)
        assert are_guarded_bisimilar(C3, [a], C6, [Const("u0")])
        va = evaluate(phi, C3, {Var("x"): a})
        vb = evaluate(phi, C6, {Var("x"): Const("u0")})
        assert va == vb

    def test_invariance_systematic(self):
        """For every bisimilar singleton pair found between two instances,
        the openGF test formulas agree (Theorem 15)."""
        d1 = make_instance("R(a,b)", "A(b)", "R(b,c)")
        d2 = make_instance("R(u,v)", "A(v)", "R(v,w)", "R(z,z)")
        bisim = coarsest_guarded_bisimulation(d1, d2)
        formulas = [parse_formula(t) for t in self.FORMULAS]
        for (src, tgt) in bisim.pairs:
            if len(src) != 1:
                continue
            for phi in formulas:
                va = evaluate(phi, d1, {Var("x"): src[0]})
                vb = evaluate(phi, d2, {Var("x"): tgt[0]})
                assert va == vb, (src, tgt, phi)

    def test_counting_invariance_theorem16(self):
        """Counting-bisimilar points agree on openGC2 formulas."""
        two1 = make_instance("R(a,b)", "R(a,c)")
        two2 = make_instance("R(u,v)", "R(u,w)")
        phi = parse_formula("exists>=2 y (R(x,y))")
        assert are_guarded_bisimilar(two1, [a], two2, [Const("u")],
                                     counting=True)
        assert evaluate(phi, two1, {Var("x"): a}) == \
            evaluate(phi, two2, {Var("x"): Const("u")})
