"""The chaos driver's cheap surface (ISSUE 10): seeded schedules,
profile validation, report shape, and the invariant checkers against
synthetic reports.  Full episodes run subprocesses and a daemon — those
live in the CI chaos smoke (``repro chaos run``), not the unit suite."""

import pytest

from repro.chaos import ChaosDriver, PROFILES, Violation
from repro.chaos.invariants import (
    check_backend_clean, check_job_accounting, check_no_unknown_cached,
    check_reports_comparable,
)
from repro.serving.fingerprint import digest
from repro.storage import SqliteBackend


def make_driver(tmp_path, seed=42, **kw):
    kw.setdefault("profile", "smoke")
    kw.setdefault("workdir", str(tmp_path / f"chaos-{seed}"))
    return ChaosDriver(seed=seed, **kw)


def report(jobs, **stats_override):
    """A synthetic BatchReport.to_dict payload with consistent stats."""
    statuses = [j["status"] for j in jobs]
    stats = {"jobs": len(jobs),
             "ok": statuses.count("ok"),
             "unknown": statuses.count("unknown"),
             "error": statuses.count("error"),
             "quarantined": statuses.count("quarantined")}
    stats.update(stats_override)
    return {"jobs": jobs, "stats": stats}


def job(job_id, index=0, status="ok", answers=(("a",),)):
    return {"index": index, "id": job_id, "query": "q(x) <- A(x)",
            "data": "<1 inline fact(s)>", "status": status,
            "verdict": "yes" if status == "ok" else None,
            "answers": [list(a) for a in answers]}


class TestDriverSurface:
    def test_profiles_are_closed_over_episodes(self):
        assert set(PROFILES) == {"smoke", "batch", "serve", "all"}
        for profile, episodes in PROFILES.items():
            assert episodes, profile
            assert set(episodes) <= set(ChaosDriver._EPISODES), profile
        assert PROFILES["all"] == PROFILES["batch"] + PROFILES["serve"]

    def test_unknown_profile_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="profile"):
            make_driver(tmp_path, profile="hurricane")

    def test_too_few_jobs_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            make_driver(tmp_path, jobs=2)

    def test_schedule_is_a_pure_function_of_the_seed(self, tmp_path):
        a = make_driver(tmp_path / "a", seed=9)
        b = make_driver(tmp_path / "b", seed=9)
        c = make_driver(tmp_path / "c", seed=10)
        assert a.schedule == b.schedule
        assert a.schedule != c.schedule

    def test_workloads_are_seeded_per_family(self, tmp_path):
        driver = make_driver(tmp_path, seed=9)
        horn = driver.workload("horn")
        assert horn.family == "horn"
        assert driver.workload("horn").fingerprint == horn.fingerprint
        disj = driver.workload("disjunctive")
        assert disj.family == "disjunctive"
        assert disj.spec.inconsistency_rate > 0


class TestJobAccounting:
    def test_clean_report_passes(self):
        jobs = [job("a", 0), job("b", 1, status="unknown", answers=())]
        assert check_job_accounting(report(jobs), ["a", "b"]) == []

    def test_lost_job_flagged(self):
        out = check_job_accounting(report([job("a")]), ["a", "b"])
        assert any("lost" in v.detail and "b" in v.detail for v in out)

    def test_duplicate_job_flagged(self):
        jobs = [job("a", 0), job("a", 1)]
        out = check_job_accounting(report(jobs), ["a"])
        assert any("2 times" in v.detail for v in out)

    def test_unexpected_job_flagged(self):
        out = check_job_accounting(report([job("a"), job("z", 1)]), ["a"])
        assert any("unexpected" in v.detail for v in out)

    def test_non_terminal_status_flagged(self):
        out = check_job_accounting(
            report([job("a", status="running")]), ["a"])
        assert any("non-terminal" in v.detail for v in out)

    def test_stats_mismatch_flagged(self):
        out = check_job_accounting(report([job("a")], ok=2), ["a"])
        assert any("stats.ok=2" in v.detail for v in out)


class TestComparableEquality:
    def test_identical_reports_pass(self):
        a = report([job("a"), job("b", 1)])
        assert check_reports_comparable(a, a, "rerun") == []

    def test_volatile_fields_ignored(self):
        a = report([job("a")])
        b = report([dict(job("a"), latency=1.0, engine="sat")])
        assert check_reports_comparable(a, b, "rerun") == []

    def test_divergent_answers_named(self):
        a = report([job("a"), job("b", 1, answers=(("x",),))])
        b = report([job("a"), job("b", 1, answers=(("y",),))])
        out = check_reports_comparable(a, b, "resume")
        assert len(out) == 1
        assert "resume" in out[0].detail
        assert "'b'" in out[0].detail and "answers" in out[0].detail


class TestCacheInvariants:
    def test_missing_backend_is_clean(self, tmp_path):
        uri = f"sqlite:{tmp_path / 'nope.db'}"
        assert check_no_unknown_cached(uri) == []
        assert check_backend_clean(uri) == []
        assert not (tmp_path / "nope.db").exists()  # checks create nothing

    def test_unknown_entry_flagged(self, tmp_path):
        import json
        import sqlite3

        path = tmp_path / "c.db"
        with SqliteBackend(path) as backend:
            backend.put(digest("good"), {"verdict": "yes", "answers": []})
        # put() itself refuses UNKNOWN values (check_storable), so plant
        # the poisoned row behind the guard's back — the scenario the
        # invariant exists to catch is exactly a write that dodged it.
        text = json.dumps({"verdict": "unknown", "answers": []})
        conn = sqlite3.connect(path)
        conn.execute(
            "INSERT INTO entries"
            "(key, value, digest, size, created, last_used, hits) "
            "VALUES(?, ?, ?, ?, 0, 0, 0)",
            (digest("bad"), text, digest(text), len(text)))
        conn.commit()
        conn.close()
        out = check_no_unknown_cached(f"sqlite:{path}")
        assert len(out) == 1
        assert out[0].invariant == "no-unknown-cached"

    def test_clean_backend_verifies(self, tmp_path):
        path = tmp_path / "c.db"
        with SqliteBackend(path) as backend:
            backend.put(digest("good"), {"verdict": "yes", "answers": []})
        assert check_backend_clean(f"sqlite:{path}") == []


class TestViolation:
    def test_str_and_dict(self):
        v = Violation("job-accounting", "job 'a' lost")
        assert str(v) == "job-accounting: job 'a' lost"
        assert v.to_dict() == {"invariant": "job-accounting",
                               "detail": "job 'a' lost"}
