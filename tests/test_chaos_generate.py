"""The seeded workload generator (ISSUE 10): determinism, verified
Figure-1 bands, spec validation, and the on-disk layout ``repro batch``
consumes."""

import json

import pytest

from repro.chaos import (
    FAMILIES, SHAPES, GenerationError, WorkloadSpec, generate_workload,
)
from repro.queries.cq import parse_cq
from repro.serving import Job, clear_caches, evaluate_batch


class TestSpecValidation:
    def test_families_and_shapes_are_closed(self):
        assert set(FAMILIES) == {"horn", "disjunctive", "mixed"}
        assert set(SHAPES) == {"atom", "chain", "star", "ip", "bool"}

    def test_unknown_family_rejected(self):
        with pytest.raises(GenerationError, match="unknown family"):
            generate_workload(WorkloadSpec(seed=1, family="datalog"))

    def test_unknown_shape_rejected(self):
        with pytest.raises(GenerationError, match="unknown shape"):
            generate_workload(WorkloadSpec(seed=1, shapes=("atom", "loop")))
        with pytest.raises(GenerationError):
            generate_workload(WorkloadSpec(seed=1, shapes=()))

    def test_size_knobs_validated(self):
        with pytest.raises(GenerationError):
            generate_workload(WorkloadSpec(seed=1, jobs=0))
        with pytest.raises(GenerationError):
            generate_workload(WorkloadSpec(seed=1, instance_size=0))
        with pytest.raises(GenerationError):
            generate_workload(WorkloadSpec(seed=1, domain_size=1))
        with pytest.raises(GenerationError):
            generate_workload(WorkloadSpec(seed=1, inconsistency_rate=1.5))

    def test_horn_cannot_be_inconsistent(self):
        with pytest.raises(GenerationError, match="disjointness"):
            generate_workload(WorkloadSpec(seed=1, family="horn",
                                           inconsistency_rate=0.5))


class TestDeterminism:
    def test_same_seed_same_workload(self):
        a = generate_workload(WorkloadSpec(seed=7))
        b = generate_workload(WorkloadSpec(seed=7))
        assert a.to_dict() == b.to_dict()
        assert a.fingerprint == b.fingerprint

    def test_different_seeds_differ(self):
        a = generate_workload(WorkloadSpec(seed=7))
        b = generate_workload(WorkloadSpec(seed=8))
        assert a.fingerprint != b.fingerprint


class TestBandVerification:
    """The generator classifies every ontology; the band in the output is
    the classifier's answer, not the family's claim."""

    def test_horn_is_ptime(self):
        wl = generate_workload(WorkloadSpec(seed=3, family="horn", jobs=2))
        assert wl.family == "horn"
        assert wl.verdict == "PTIME"

    def test_disjunctive_is_conp_hard(self):
        wl = generate_workload(
            WorkloadSpec(seed=3, family="disjunctive", jobs=2))
        assert wl.family == "disjunctive"
        assert wl.verdict == "CONP_HARD"

    def test_mixed_resolves_to_a_concrete_family(self):
        wl = generate_workload(WorkloadSpec(seed=5, jobs=2))
        assert wl.family in ("horn", "disjunctive")

    def test_inconsistency_forces_disjunctive(self):
        wl = generate_workload(
            WorkloadSpec(seed=5, jobs=2, inconsistency_rate=0.5))
        assert wl.family == "disjunctive"


class TestEmittedJobs:
    def test_job_shape_and_ids(self):
        spec = WorkloadSpec(seed=11, family="horn", jobs=7,
                            shapes=("atom", "chain"))
        wl = generate_workload(spec)
        assert len(wl.jobs) == 7
        ids = [job["id"] for job in wl.jobs]
        assert len(set(ids)) == 7
        # Shapes round-robin through the requested tuple.
        assert ids[0].startswith("atom-") and ids[1].startswith("chain-")
        for job in wl.jobs:
            parse_cq(job["query"])  # every emitted query re-parses
            assert job["facts"]

    def test_inconsistent_instances_violate_disjointness(self):
        wl = generate_workload(
            WorkloadSpec(seed=11, family="disjunctive", jobs=4,
                         inconsistency_rate=1.0))
        for job in wl.jobs:
            d = {f[0] for f in job["facts"] if f.startswith(("D(", "N("))}
            assert d == {"D", "N"}, job["facts"]

    def test_generated_workload_evaluates(self):
        wl = generate_workload(WorkloadSpec(seed=13, family="horn", jobs=3))
        clear_caches()
        jobs = [Job(query=j["query"], facts=tuple(j["facts"]),
                    job_id=j["id"]) for j in wl.jobs]
        report = evaluate_batch(wl.ontology(), jobs, workers=1)
        assert report.stats["ok"] == 3


class TestWrite:
    def test_layout_and_manifest(self, tmp_path):
        wl = generate_workload(WorkloadSpec(seed=17, family="horn", jobs=3))
        paths = wl.write(tmp_path / "wl")
        assert set(paths) == {"ontology", "workload", "manifest"}
        assert (tmp_path / "wl" / "ontology.gf").read_text() \
            == wl.ontology_text
        assert json.loads((tmp_path / "wl" / "workload.json").read_text()) \
            == wl.jobs
        manifest = json.loads(
            (tmp_path / "wl" / "manifest.json").read_text())
        assert manifest["fingerprint"] == wl.fingerprint
        assert manifest["spec"] == wl.spec.to_dict()
        assert manifest["band"] == wl.band
