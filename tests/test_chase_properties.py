"""Property-based tests for the chase engine: soundness and universality."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.logic.homomorphism import has_homomorphism
from repro.logic.instance import Interpretation
from repro.logic.model_check import satisfies_all
from repro.logic.ontology import Ontology, ontology
from repro.logic.syntax import Atom, Const
from repro.semantics.chase import ChaseError, chase
from repro.semantics.modelsearch import find_model

# a small pool of Horn and disjunctive guarded ontologies
ONTOLOGIES = [
    ontology("forall x,y (R(x,y) -> (A(x) -> A(y)))"),
    ontology("forall x (x = x -> (A(x) -> exists y (R(x,y) & B(y))))"),
    ontology("forall x (x = x -> (C(x) -> (A(x) | B(x))))"),
    ontology("forall x,y (R(x,y) -> (A(x) -> ~B(y)))"),
    Ontology(
        ontology("forall x (x = x -> (A(x) -> exists y (F(x,y) & B(y))))").sentences,
        functional=["F"]),
]

elements = st.sampled_from([Const(f"e{i}") for i in range(3)])
facts = st.one_of(
    st.builds(lambda p, x: Atom(p, (x,)),
              st.sampled_from(["A", "B", "C"]), elements),
    st.builds(lambda p, x, y: Atom(p, (x, y)),
              st.sampled_from(["R", "F"]), elements, elements),
)
instances = st.lists(facts, min_size=1, max_size=5).map(Interpretation)
ontology_idx = st.integers(0, len(ONTOLOGIES) - 1)


class TestChaseSoundness:
    @given(ontology_idx, instances)
    @settings(max_examples=40, deadline=None)
    def test_complete_branches_are_models(self, idx, instance):
        onto = ONTOLOGIES[idx]
        try:
            result = chase(onto, instance, max_depth=4)
        except (ChaseError, ValueError):
            return
        for branch in result.consistent_branches():
            if branch.complete:
                assert satisfies_all(branch.interp, onto.all_sentences())
                for fact in instance:
                    if not (onto.functional or onto.inverse_functional):
                        assert fact in branch.interp

    @given(ontology_idx, instances)
    @settings(max_examples=30, deadline=None)
    def test_chase_consistency_agrees_with_sat(self, idx, instance):
        onto = ONTOLOGIES[idx]
        try:
            result = chase(onto, instance, max_depth=4)
        except (ChaseError, ValueError):
            return
        if not result.fully_chased:
            return
        sat_model = find_model(onto, instance, extra=2)
        if result.is_consistent:
            # chase found a model: SAT must too (it has enough elements
            # whenever the chase needed at most 2 fresh nulls)
            if len(result.consistent_branches()[0].interp.dom()) \
                    <= len(instance.dom()) + 2:
                assert sat_model is not None
        else:
            assert sat_model is None

    @given(instances)
    @settings(max_examples=30, deadline=None)
    def test_universal_branch_maps_into_sat_model(self, instance):
        """Horn chase models are hom-universal: they map into any model."""
        onto = ONTOLOGIES[1]  # A -> exists R.B
        try:
            result = chase(onto, instance, max_depth=4)
        except (ChaseError, ValueError):
            return
        branches = result.consistent_branches()
        if not branches or not branches[0].complete:
            return
        target = find_model(onto, instance, extra=2)
        if target is None:
            return
        assert has_homomorphism(
            branches[0].interp, target, preserve=instance.dom())
