"""Regression suite: the classifier on a battery of known ontologies.

Each entry records the expected Figure-1 band and (where the paper or a
simple argument settles it) the complexity verdict.  This is the
acceptance suite for the library's headline function.
"""

import pytest

from repro.core import Status, Verdict, classify_ontology
from repro.logic.instance import make_instance
from repro.logic.ontology import Ontology, ontology

HAND_WITNESS = make_instance("Hand(h)", "hasFinger(h,f1)", "hasFinger(h,f2)")

SUITE = [
    # (name, ontology, expected band, expected verdict or None, extra instances)
    ("empty", ontology(""), Status.DICHOTOMY, Verdict.PTIME, None),
    ("atomic inclusion",
     ontology("forall x (x = x -> (A(x) -> B(x)))"),
     Status.DICHOTOMY, Verdict.PTIME, None),
    ("role propagation",
     ontology("forall x,y (R(x,y) -> (A(x) -> A(y)))"),
     Status.DICHOTOMY, Verdict.PTIME, None),
    ("existential witness",
     ontology("forall x (x = x -> (A(x) -> exists y (R(x,y) & B(y))))"),
     Status.DICHOTOMY, Verdict.PTIME, None),
    ("disjointness constraint",
     ontology("forall x (x = x -> (A(x) -> ~B(x)))"),
     Status.DICHOTOMY, Verdict.PTIME, None),
    ("covering disjunction",
     ontology("forall x (x = x -> (C(x) -> (A(x) | B(x))))"),
     Status.DICHOTOMY, Verdict.CONP_HARD, None),
    ("counting lower bound",
     ontology("forall x (x = x -> (H(x) -> exists>=3 y (F(x,y))))"),
     Status.DICHOTOMY, Verdict.PTIME, None),
    ("exactly-2 plus thumb (intro example)",
     ontology(
         "forall x (x = x -> (Hand(x) -> exists>=2 y (hasFinger(x,y))))\n"
         "forall x (x = x -> (Hand(x) -> ~(exists>=3 y (hasFinger(x,y)))))\n"
         "forall x (x = x -> (Hand(x) -> exists y (hasFinger(x,y) & Thumb(y))))"),
     Status.DICHOTOMY, Verdict.CONP_HARD, [HAND_WITNESS]),
    ("ternary guard",
     ontology("forall x,y,z (T(x,y,z) -> (A(x) | exists u (S(z,u) & B(u))))"),
     Status.DICHOTOMY, Verdict.CONP_HARD, None),
    ("equality marker (CSP-hard shape)",
     ontology("forall x,y (R(x,y) -> exists x (S(y,x) & x = y))"),
     Status.CSP_HARD, None, None),
    ("depth 2 with functions (no dichotomy shape)",
     Ontology(
         ontology(
             "forall x (x = x -> (A(x) -> exists y (R(x,y) & exists x (S(y,x) & B(x)))))"
         ).sentences, functional=["R"]),
     Status.NO_DICHOTOMY, None, None),
]


@pytest.mark.parametrize(
    "name,onto,band,verdict,extra",
    SUITE, ids=[s[0] for s in SUITE])
def test_classifier(name, onto, band, verdict, extra):
    result = classify_ontology(
        onto,
        mat_kwargs={"max_elems": 1, "max_facts": 1}
        if extra else {"max_elems": 2, "max_facts": 2},
        extra_instances=extra)
    assert result.band is band, result.summary()
    if verdict is not None:
        assert result.verdict is verdict, result.summary()


def test_suite_covers_all_bands():
    bands = {entry[2] for entry in SUITE}
    assert bands == {Status.DICHOTOMY, Status.CSP_HARD, Status.NO_DICHOTOMY}
