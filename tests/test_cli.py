"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def workspace(tmp_path):
    onto = tmp_path / "onto.gf"
    onto.write_text(
        "forall x (x = x -> (Hand(x) -> exists y (hasFinger(x,y) & Thumb(y))))\n")
    dl = tmp_path / "onto.dl"
    dl.write_text("Hand sub some hasFinger Thumb\n")
    data = tmp_path / "data.facts"
    data.write_text("Hand(h)\n# a comment\nArm(a)\n")
    bad = tmp_path / "clash.facts"
    bad.write_text("Hand(h)\n")
    return {"onto": str(onto), "dl": str(dl), "data": str(data)}


class TestClassify:
    def test_classify_fo(self, workspace, capsys):
        assert main(["classify", workspace["onto"]]) == 0
        out = capsys.readouterr().out
        assert "DICHOTOMY" in out
        assert "PTIME" in out

    def test_classify_dl(self, workspace, capsys):
        assert main(["classify", workspace["dl"], "--dl"]) == 0
        out = capsys.readouterr().out
        assert "DICHOTOMY" in out

    def test_classify_no_mat(self, workspace, capsys):
        assert main(["classify", workspace["onto"], "--no-mat"]) == 0
        out = capsys.readouterr().out
        assert "unknown" in out


class TestEvaluate:
    def test_evaluate_cq(self, workspace, capsys):
        assert main(["evaluate", workspace["onto"], workspace["data"],
                     "q(x) <- hasFinger(x,y) & Thumb(y)"]) == 0
        out = capsys.readouterr().out
        assert "h" in out and "1 certain answer" in out

    def test_evaluate_boolean(self, workspace, capsys):
        assert main(["evaluate", workspace["onto"], workspace["data"],
                     "q() <- Thumb(y)"]) == 0
        assert "certain: True" in capsys.readouterr().out

    def test_evaluate_ucq(self, workspace, capsys):
        assert main(["evaluate", workspace["onto"], workspace["data"],
                     "q(x) <- Thumb(x) ; q(x) <- Hand(x)"]) == 0
        assert "h" in capsys.readouterr().out

    def test_evaluate_sat_backend(self, workspace, capsys):
        assert main(["evaluate", workspace["onto"], workspace["data"],
                     "q() <- Thumb(y)", "--backend", "sat"]) == 0
        assert "certain: True" in capsys.readouterr().out


class TestConsistent:
    def test_consistent(self, workspace, capsys):
        assert main(["consistent", workspace["onto"], workspace["data"]]) == 0
        assert "consistent: True" in capsys.readouterr().out

    def test_inconsistent_exit_code(self, tmp_path, capsys):
        onto = tmp_path / "o.gf"
        onto.write_text("forall x (x = x -> (A(x) -> false))\n")
        data = tmp_path / "d.facts"
        data.write_text("A(a)\n")
        assert main(["consistent", str(onto), str(data)]) == 1
        assert "consistent: False" in capsys.readouterr().out


class TestInfoCommands:
    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "uGF(1)" in out and "NO_DICHOTOMY" in out

    def test_bioportal(self, capsys):
        assert main(["bioportal"]) == 0
        out = capsys.readouterr().out
        assert "405/411" in out and "385/411" in out


class TestLintCommand:
    def test_clean_ontology_exit_zero(self, workspace, capsys):
        assert main(["lint", workspace["onto"]]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_error_diagnostic_exit_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.gf"
        bad.write_text("exists z (A(z) | B(z))\n")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "OMQ001" in out and "bad.gf:1" in out

    def test_json_format(self, tmp_path, capsys):
        import json

        bad = tmp_path / "bad.gf"
        bad.write_text("exists z (A(z) | B(z))\n")
        assert main(["lint", str(bad), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["diagnostics"][0]["code"] == "OMQ001"
        assert payload["diagnostics"][0]["line"] == 1

    def test_cross_artifact_data_clash(self, workspace, tmp_path, capsys):
        data = tmp_path / "clash.facts"
        data.write_text("hasFinger(a,b,c)\n")
        assert main(["lint", workspace["onto"], "--data", str(data)]) == 1
        assert "OMQ019" in capsys.readouterr().out

    def test_query_lint(self, workspace, capsys):
        assert main(["lint", workspace["onto"],
                     "--query", "q(x) <- Thumb(y)"]) == 1
        assert "OMQ012" in capsys.readouterr().out

    def test_program_lint(self, workspace, tmp_path, capsys):
        prog = tmp_path / "p.dlog"
        prog.write_text("goal(x) <- Q(y)\n")
        assert main(["lint", workspace["onto"], "--program", str(prog)]) == 1
        assert "OMQ011" in capsys.readouterr().out

    def test_dl_ontology_lint(self, workspace, capsys):
        assert main(["lint", workspace["dl"], "--dl"]) == 0

    def test_unparseable_ontology_exit_two(self, tmp_path, capsys):
        broken = tmp_path / "broken.gf"
        broken.write_text("forall x (A(x) -> B(x)\nA(a) -> \n")
        assert main(["lint", str(broken)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "broken.gf" in err
        assert "line 1" in err


class TestParseErrorHandling:
    def test_classify_unparseable_exit_two(self, tmp_path, capsys):
        broken = tmp_path / "broken.gf"
        broken.write_text("forall x (A(x) &&& B(x))\n")
        assert main(["classify", str(broken)]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # one-line message, no traceback
        assert "broken.gf" in err and "line 1" in err

    def test_missing_file_exit_two(self, capsys):
        assert main(["classify", "/nonexistent/onto.gf"]) == 2
        assert "onto.gf" in capsys.readouterr().err

    def test_evaluate_bad_data_exit_two(self, workspace, tmp_path, capsys):
        data = tmp_path / "bad.facts"
        data.write_text("NotAFact(\n")
        assert main(["evaluate", workspace["onto"], str(data),
                     "q() <- Thumb(y)"]) == 2
        assert "bad.facts" in capsys.readouterr().err

    def test_evaluate_bad_query_exit_two(self, workspace, capsys):
        assert main(["evaluate", workspace["onto"], workspace["data"],
                     "not a query"]) == 2
        assert "query" in capsys.readouterr().err

    def test_consistent_unparseable_dl_exit_two(self, tmp_path, capsys):
        dl = tmp_path / "broken.dl"
        dl.write_text("Hand sub nonsense junk axiom\n")
        data = tmp_path / "d.facts"
        data.write_text("Hand(h)\n")
        assert main(["consistent", str(dl), str(data), "--dl"]) == 2
        assert "broken.dl" in capsys.readouterr().err

    def test_preflight_lint_failure_exit_two(self, workspace, tmp_path, capsys):
        data = tmp_path / "clash.facts"
        data.write_text("hasFinger(h,f1,f2)\n")
        assert main(["evaluate", workspace["onto"], str(data),
                     "q() <- Thumb(y)", "--preflight"]) == 2
        err = capsys.readouterr().err
        assert "pre-flight" in err and "OMQ019" in err
