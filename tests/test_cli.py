"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def workspace(tmp_path):
    onto = tmp_path / "onto.gf"
    onto.write_text(
        "forall x (x = x -> (Hand(x) -> exists y (hasFinger(x,y) & Thumb(y))))\n")
    dl = tmp_path / "onto.dl"
    dl.write_text("Hand sub some hasFinger Thumb\n")
    data = tmp_path / "data.facts"
    data.write_text("Hand(h)\n# a comment\nArm(a)\n")
    bad = tmp_path / "clash.facts"
    bad.write_text("Hand(h)\n")
    return {"onto": str(onto), "dl": str(dl), "data": str(data)}


class TestClassify:
    def test_classify_fo(self, workspace, capsys):
        assert main(["classify", workspace["onto"]]) == 0
        out = capsys.readouterr().out
        assert "DICHOTOMY" in out
        assert "PTIME" in out

    def test_classify_dl(self, workspace, capsys):
        assert main(["classify", workspace["dl"], "--dl"]) == 0
        out = capsys.readouterr().out
        assert "DICHOTOMY" in out

    def test_classify_no_mat(self, workspace, capsys):
        assert main(["classify", workspace["onto"], "--no-mat"]) == 0
        out = capsys.readouterr().out
        assert "unknown" in out


class TestEvaluate:
    def test_evaluate_cq(self, workspace, capsys):
        assert main(["evaluate", workspace["onto"], workspace["data"],
                     "q(x) <- hasFinger(x,y) & Thumb(y)"]) == 0
        out = capsys.readouterr().out
        assert "h" in out and "1 certain answer" in out

    def test_evaluate_boolean(self, workspace, capsys):
        assert main(["evaluate", workspace["onto"], workspace["data"],
                     "q() <- Thumb(y)"]) == 0
        assert "certain: True" in capsys.readouterr().out

    def test_evaluate_ucq(self, workspace, capsys):
        assert main(["evaluate", workspace["onto"], workspace["data"],
                     "q(x) <- Thumb(x) ; q(x) <- Hand(x)"]) == 0
        assert "h" in capsys.readouterr().out

    def test_evaluate_sat_backend(self, workspace, capsys):
        assert main(["evaluate", workspace["onto"], workspace["data"],
                     "q() <- Thumb(y)", "--backend", "sat"]) == 0
        assert "certain: True" in capsys.readouterr().out


class TestConsistent:
    def test_consistent(self, workspace, capsys):
        assert main(["consistent", workspace["onto"], workspace["data"]]) == 0
        assert "consistent: True" in capsys.readouterr().out

    def test_inconsistent_exit_code(self, tmp_path, capsys):
        onto = tmp_path / "o.gf"
        onto.write_text("forall x (x = x -> (A(x) -> false))\n")
        data = tmp_path / "d.facts"
        data.write_text("A(a)\n")
        assert main(["consistent", str(onto), str(data)]) == 1
        assert "consistent: False" in capsys.readouterr().out


class TestInfoCommands:
    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "uGF(1)" in out and "NO_DICHOTOMY" in out

    def test_bioportal(self, capsys):
        assert main(["bioportal"]) == 0
        out = capsys.readouterr().out
        assert "405/411" in out and "385/411" in out
