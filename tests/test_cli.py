"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def workspace(tmp_path):
    onto = tmp_path / "onto.gf"
    onto.write_text(
        "forall x (x = x -> (Hand(x) -> exists y (hasFinger(x,y) & Thumb(y))))\n")
    dl = tmp_path / "onto.dl"
    dl.write_text("Hand sub some hasFinger Thumb\n")
    data = tmp_path / "data.facts"
    data.write_text("Hand(h)\n# a comment\nArm(a)\n")
    bad = tmp_path / "clash.facts"
    bad.write_text("Hand(h)\n")
    return {"onto": str(onto), "dl": str(dl), "data": str(data)}


class TestClassify:
    def test_classify_fo(self, workspace, capsys):
        assert main(["classify", workspace["onto"]]) == 0
        out = capsys.readouterr().out
        assert "DICHOTOMY" in out
        assert "PTIME" in out

    def test_classify_dl(self, workspace, capsys):
        assert main(["classify", workspace["dl"], "--dl"]) == 0
        out = capsys.readouterr().out
        assert "DICHOTOMY" in out

    def test_classify_no_mat(self, workspace, capsys):
        assert main(["classify", workspace["onto"], "--no-mat"]) == 0
        out = capsys.readouterr().out
        assert "unknown" in out


class TestEvaluate:
    def test_evaluate_cq(self, workspace, capsys):
        assert main(["evaluate", workspace["onto"], workspace["data"],
                     "q(x) <- hasFinger(x,y) & Thumb(y)"]) == 0
        out = capsys.readouterr().out
        assert "h" in out and "1 certain answer" in out

    def test_evaluate_boolean(self, workspace, capsys):
        assert main(["evaluate", workspace["onto"], workspace["data"],
                     "q() <- Thumb(y)"]) == 0
        assert "certain: True" in capsys.readouterr().out

    def test_evaluate_ucq(self, workspace, capsys):
        assert main(["evaluate", workspace["onto"], workspace["data"],
                     "q(x) <- Thumb(x) ; q(x) <- Hand(x)"]) == 0
        assert "h" in capsys.readouterr().out

    def test_evaluate_sat_backend(self, workspace, capsys):
        assert main(["evaluate", workspace["onto"], workspace["data"],
                     "q() <- Thumb(y)", "--backend", "sat"]) == 0
        assert "certain: True" in capsys.readouterr().out


class TestEvaluateMultiQuery:
    def test_single_query_via_flag_matches_positional(self, workspace, capsys):
        assert main(["evaluate", workspace["onto"], workspace["data"],
                     "-q", "q(x) <- hasFinger(x,y) & Thumb(y)"]) == 0
        flag_out = capsys.readouterr().out
        assert main(["evaluate", workspace["onto"], workspace["data"],
                     "q(x) <- hasFinger(x,y) & Thumb(y)"]) == 0
        assert flag_out == capsys.readouterr().out

    def test_multiple_query_flags(self, workspace, capsys):
        assert main(["evaluate", workspace["onto"], workspace["data"],
                     "-q", "q(x) <- Hand(x)",
                     "-q", "q() <- Thumb(y)"]) == 0
        out = capsys.readouterr().out
        assert "query: q(x) <- Hand(x)" in out
        assert "query: q() <- Thumb(y)" in out
        assert "1 certain answer(s):" in out and "certain: True" in out

    def test_positional_plus_flag(self, workspace, capsys):
        assert main(["evaluate", workspace["onto"], workspace["data"],
                     "q(x) <- Hand(x)", "-q", "q() <- Thumb(y)"]) == 0
        out = capsys.readouterr().out
        assert out.index("q(x) <- Hand(x)") < out.index("q() <- Thumb(y)")

    def test_query_file(self, workspace, tmp_path, capsys):
        qfile = tmp_path / "queries.txt"
        qfile.write_text(
            "q(x) <- Hand(x)\n"
            "# a comment line\n"
            "\n"
            "q() <- Thumb(y)\n")
        assert main(["evaluate", workspace["onto"], workspace["data"],
                     "--query-file", str(qfile)]) == 0
        out = capsys.readouterr().out
        assert out.count("query: ") == 2

    def test_multi_query_json_payload(self, workspace, capsys):
        import json

        assert main(["evaluate", workspace["onto"], workspace["data"],
                     "-q", "q(x) <- Hand(x)", "-q", "q() <- Thumb(y)",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [q["query"] for q in payload["queries"]] == [
            "q(x) <- Hand(x)", "q() <- Thumb(y)"]
        assert payload["queries"][0]["answers"] == [["h"]]
        assert payload["queries"][1]["verdict"] == "yes"

    def test_no_query_at_all_exit_two(self, workspace, capsys):
        assert main(["evaluate", workspace["onto"], workspace["data"]]) == 2
        assert "no query given" in capsys.readouterr().err

    def test_one_bad_query_exit_two(self, workspace, capsys):
        assert main(["evaluate", workspace["onto"], workspace["data"],
                     "-q", "q(x) <- Hand(x)", "-q", "not a query"]) == 2
        assert "query" in capsys.readouterr().err


class TestBatchCommand:
    @pytest.fixture
    def batch_workspace(self, workspace, tmp_path):
        import json

        workload = [
            {"query": "q(x) <- hasFinger(x,y) & Thumb(y)", "data": "data.facts"},
            {"query": "q() <- Thumb(y)", "facts": ["Hand(h)"]},
            {"query": "q(x) <- Hand(x)", "facts": ["Hand(h)", "Hand(g)"],
             "id": "pair"},
            {"query": "q(x) <- hasFinger(x,y) & Thumb(y)", "data": "data.facts"},
        ]
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps(workload))
        workspace["workload"] = str(path)
        return workspace

    def test_batch_text_report(self, batch_workspace, capsys):
        assert main(["batch", batch_workspace["onto"],
                     "--workload", batch_workspace["workload"]]) == 0
        out = capsys.readouterr().out
        assert "batch: 4 job(s), 4 ok / 0 unknown / 0 error" in out
        assert "cache=hit" in out  # job 3 repeats job 0

    def test_batch_json_report(self, batch_workspace, capsys):
        import json

        assert main(["batch", batch_workspace["onto"],
                     "--workload", batch_workspace["workload"],
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["jobs"]) == 4
        assert payload["jobs"][0]["answers"] == [["h"]]
        assert payload["jobs"][1]["verdict"] == "yes"
        assert payload["jobs"][2]["id"] == "pair"
        assert payload["jobs"][3]["cache_hit"] is True
        stats = payload["stats"]
        assert stats["ok"] == 4 and stats["cache"]["hits"] >= 1
        assert "latency" in stats and "wall_seconds" in stats

    def test_batch_parallel_matches_serial(self, batch_workspace, capsys):
        import json

        assert main(["batch", batch_workspace["onto"],
                     "--workload", batch_workspace["workload"],
                     "--jobs", "2", "--format", "json"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        assert main(["batch", batch_workspace["onto"],
                     "--workload", batch_workspace["workload"],
                     "--jobs", "1", "--format", "json"]) == 0
        serial = json.loads(capsys.readouterr().out)
        keys = ("index", "status", "verdict", "answers")
        assert [{k: j[k] for k in keys} for j in parallel["jobs"]] == \
            [{k: j[k] for k in keys} for j in serial["jobs"]]

    def test_batch_error_job_exit_two(self, batch_workspace, tmp_path, capsys):
        import json

        path = tmp_path / "bad_jobs.json"
        path.write_text(json.dumps(
            [{"query": "q(x) <- Hand(x)", "facts": ["Hand(h)"]},
             {"query": "q(x) <- Hand(x)", "data": "missing.facts"}]))
        assert main(["batch", batch_workspace["onto"],
                     "--workload", str(path)]) == 2
        assert "error" in capsys.readouterr().out

    def test_batch_malformed_workload_exit_two(self, batch_workspace,
                                               tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["batch", batch_workspace["onto"],
                     "--workload", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "invalid JSON" in err

    def test_batch_zero_jobs_flag_exit_two(self, batch_workspace, capsys):
        assert main(["batch", batch_workspace["onto"],
                     "--workload", batch_workspace["workload"],
                     "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err


class TestConsistent:
    def test_consistent(self, workspace, capsys):
        assert main(["consistent", workspace["onto"], workspace["data"]]) == 0
        assert "consistent: True" in capsys.readouterr().out

    def test_inconsistent_exit_code(self, tmp_path, capsys):
        onto = tmp_path / "o.gf"
        onto.write_text("forall x (x = x -> (A(x) -> false))\n")
        data = tmp_path / "d.facts"
        data.write_text("A(a)\n")
        assert main(["consistent", str(onto), str(data)]) == 1
        assert "consistent: False" in capsys.readouterr().out


class TestInfoCommands:
    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "uGF(1)" in out and "NO_DICHOTOMY" in out

    def test_bioportal(self, capsys):
        assert main(["bioportal"]) == 0
        out = capsys.readouterr().out
        assert "405/411" in out and "385/411" in out


class TestLintCommand:
    def test_clean_ontology_exit_zero(self, workspace, capsys):
        assert main(["lint", workspace["onto"]]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_error_diagnostic_exit_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.gf"
        bad.write_text("exists z (A(z) | B(z))\n")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "OMQ001" in out and "bad.gf:1" in out

    def test_json_format(self, tmp_path, capsys):
        import json

        bad = tmp_path / "bad.gf"
        bad.write_text("exists z (A(z) | B(z))\n")
        assert main(["lint", str(bad), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["diagnostics"][0]["code"] == "OMQ001"
        assert payload["diagnostics"][0]["line"] == 1

    def test_cross_artifact_data_clash(self, workspace, tmp_path, capsys):
        data = tmp_path / "clash.facts"
        data.write_text("hasFinger(a,b,c)\n")
        assert main(["lint", workspace["onto"], "--data", str(data)]) == 1
        assert "OMQ019" in capsys.readouterr().out

    def test_query_lint(self, workspace, capsys):
        assert main(["lint", workspace["onto"],
                     "--query", "q(x) <- Thumb(y)"]) == 1
        assert "OMQ012" in capsys.readouterr().out

    def test_program_lint(self, workspace, tmp_path, capsys):
        prog = tmp_path / "p.dlog"
        prog.write_text("goal(x) <- Q(y)\n")
        assert main(["lint", workspace["onto"], "--program", str(prog)]) == 1
        assert "OMQ011" in capsys.readouterr().out

    def test_dl_ontology_lint(self, workspace, capsys):
        assert main(["lint", workspace["dl"], "--dl"]) == 0

    def test_unparseable_ontology_exit_two(self, tmp_path, capsys):
        broken = tmp_path / "broken.gf"
        broken.write_text("forall x (A(x) -> B(x)\nA(a) -> \n")
        assert main(["lint", str(broken)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "broken.gf" in err
        assert "line 1" in err


class TestParseErrorHandling:
    def test_classify_unparseable_exit_two(self, tmp_path, capsys):
        broken = tmp_path / "broken.gf"
        broken.write_text("forall x (A(x) &&& B(x))\n")
        assert main(["classify", str(broken)]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # one-line message, no traceback
        assert "broken.gf" in err and "line 1" in err

    def test_missing_file_exit_two(self, capsys):
        assert main(["classify", "/nonexistent/onto.gf"]) == 2
        assert "onto.gf" in capsys.readouterr().err

    def test_evaluate_bad_data_exit_two(self, workspace, tmp_path, capsys):
        data = tmp_path / "bad.facts"
        data.write_text("NotAFact(\n")
        assert main(["evaluate", workspace["onto"], str(data),
                     "q() <- Thumb(y)"]) == 2
        assert "bad.facts" in capsys.readouterr().err

    def test_evaluate_bad_query_exit_two(self, workspace, capsys):
        assert main(["evaluate", workspace["onto"], workspace["data"],
                     "not a query"]) == 2
        assert "query" in capsys.readouterr().err

    def test_consistent_unparseable_dl_exit_two(self, tmp_path, capsys):
        dl = tmp_path / "broken.dl"
        dl.write_text("Hand sub nonsense junk axiom\n")
        data = tmp_path / "d.facts"
        data.write_text("Hand(h)\n")
        assert main(["consistent", str(dl), str(data), "--dl"]) == 2
        assert "broken.dl" in capsys.readouterr().err

    def test_preflight_lint_failure_exit_two(self, workspace, tmp_path, capsys):
        data = tmp_path / "clash.facts"
        data.write_text("hasFinger(h,f1,f2)\n")
        assert main(["evaluate", workspace["onto"], str(data),
                     "q() <- Thumb(y)", "--preflight"]) == 2
        err = capsys.readouterr().err
        assert "pre-flight" in err and "OMQ019" in err


class TestCacheCliMissingStore:
    """``repro cache`` against a backend path that was never created:
    an empty report, exit 0, and the store must not be created as a side
    effect of asking (ISSUE 10, satellite 2)."""

    def test_stats_reports_empty(self, tmp_path, capsys):
        import json
        path = tmp_path / "c.db"
        assert main(["cache", "stats", f"sqlite:{path}",
                     "--format", "json"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["entries"] == 0 and out["exists"] is False
        assert not path.exists()

    def test_evict_is_a_no_op(self, tmp_path, capsys):
        path = tmp_path / "s"
        assert main(["cache", "evict", f"shard:{path}",
                     "--older-than", "60"]) == 0
        out = capsys.readouterr().out
        assert "evicted 0" in out and "no store" in out
        assert not path.exists()

    def test_verify_is_clean(self, tmp_path, capsys):
        path = tmp_path / "d"
        assert main(["cache", "verify", f"dir:{path}"]) == 0
        out = capsys.readouterr().out
        assert "ok: 0" in out and "no store" in out
        assert not path.exists()

    def test_bad_uri_still_exit_two(self, tmp_path, capsys):
        assert main(["cache", "stats", "redis:nope"]) == 2
        assert "unknown scheme" in capsys.readouterr().err


class TestChaosCli:
    def test_generate_prints_verified_workload(self, capsys):
        import json
        assert main(["chaos", "generate", "--seed", "3",
                     "--family", "horn", "--jobs", "2"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["family"] == "horn"
        assert doc["verdict"] == "PTIME"
        assert len(doc["jobs"]) == 2

    def test_generate_writes_batch_ready_triple(self, tmp_path, capsys):
        out_dir = tmp_path / "wl"
        assert main(["chaos", "generate", "--seed", "3",
                     "--family", "horn", "--jobs", "2",
                     "--out", str(out_dir)]) == 0
        assert "fingerprint" in capsys.readouterr().out
        for name in ("ontology.gf", "workload.json", "manifest.json"):
            assert (out_dir / name).exists()

    def test_generate_invalid_spec_exit_two(self, capsys):
        assert main(["chaos", "generate", "--seed", "1",
                     "--family", "horn", "--inconsistency", "0.5"]) == 2
        assert "disjointness" in capsys.readouterr().err
