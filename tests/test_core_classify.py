"""Tests for the Figure-1 map, the classifier and unravelling tolerance."""

import pytest

from repro.core.dichotomy import FIGURE_1, Status, classify_dl, classify_profile, entry_for
from repro.core.classify import Verdict, classify_dl_ontology, classify_ontology
from repro.core.tolerance import check_unravelling_tolerance, default_flavour
from repro.dl import parse_dl_ontology
from repro.guarded.fragments import profile_ontology
from repro.logic.instance import make_instance
from repro.logic.ontology import Ontology, ontology


class TestFigure1Map:
    def test_all_bands_present(self):
        bands = {e.status for e in FIGURE_1}
        assert bands == {Status.DICHOTOMY, Status.CSP_HARD, Status.NO_DICHOTOMY}

    def test_entry_lookup(self):
        assert entry_for("uGF(1)").status is Status.DICHOTOMY
        with pytest.raises(KeyError):
            entry_for("uGF(99)")

    def test_dichotomy_fragments(self):
        for name in ("uGF(1)", "uGF-(1,=)", "uGF2-(2)", "uGC2-(1,=)",
                     "ALCHIF depth 2", "ALCHIQ depth 1"):
            assert entry_for(name).status is Status.DICHOTOMY

    def test_csp_hard_fragments(self):
        for name in ("uGF2(1,=)", "uGF2(2)", "uGF2(1,f)", "ALCF_l depth 2"):
            assert entry_for(name).status is Status.CSP_HARD

    def test_no_dichotomy_fragments(self):
        for name in ("uGF2-(2,f)", "ALCIF_l depth 2"):
            assert entry_for(name).status is Status.NO_DICHOTOMY


class TestProfileClassification:
    def test_ugf1_classified(self):
        O = ontology("forall x,y (R(x,y) -> (A(x) | exists z (S(y,z) & B(z))))")
        entry, band = classify_profile(profile_ontology(O))
        assert entry.name == "uGF(1)"
        assert band is Status.DICHOTOMY

    def test_csp_hard_equality(self):
        # depth-1, two variables, equality, inner guards not equality-only
        O = ontology("forall x (x = x -> exists y (R(x,y) & x = y))")
        # outer guard IS equality here, so this is uGC2-/uGF- shaped; use a
        # relational outer guard to leave the ·− fragment:
        O2 = ontology("forall x,y (R(x,y) -> exists x (S(y,x) & x = y))")
        entry, band = classify_profile(profile_ontology(O2))
        assert band is Status.CSP_HARD

    def test_functions_no_dichotomy_at_depth2(self):
        O = Ontology(
            ontology(
                "forall x (x = x -> exists y (R(x,y) & exists x (S(y,x) & A(x))))"
            ).sentences,
            functional=["R"])
        entry, band = classify_profile(profile_ontology(O))
        assert entry.name == "uGF2-(2,f)"
        assert band is Status.NO_DICHOTOMY

    def test_functions_at_depth1_stay_dichotomy(self):
        """Functionality alone is a uGC2-(1) counting sentence."""
        O = Ontology(
            ontology("forall x (x = x -> (A(x) -> exists y (R(x,y) & B(y))))").sentences,
            functional=["R"])
        entry, band = classify_profile(profile_ontology(O))
        assert band is Status.DICHOTOMY

    def test_non_ugf_open(self):
        from repro.logic.syntax import Atom, Eq, Forall, Or, Var
        x = Var("x")
        s = Or.of(Forall((x,), Eq(x, x), Atom("A", (x,))),
                  Forall((x,), Eq(x, x), Atom("B", (x,))))
        entry, band = classify_profile(profile_ontology(Ontology([s])))
        assert band is Status.OPEN


class TestDLClassification:
    def test_alchiq_depth1(self):
        entry, band = classify_dl("ALCHIQ", 1)
        assert band is Status.DICHOTOMY

    def test_alchif_depth2(self):
        entry, band = classify_dl("ALCHIF", 2)
        assert band is Status.DICHOTOMY

    def test_alcfl_depth2_csp_hard(self):
        entry, band = classify_dl("ALCF_l", 2)
        assert band is Status.CSP_HARD

    def test_alcifl_depth2_no_dichotomy(self):
        entry, band = classify_dl("ALCIF_l", 2)
        assert band is Status.NO_DICHOTOMY

    def test_alc_depth3_csp_hard(self):
        entry, band = classify_dl("ALC", 3)
        assert band is Status.CSP_HARD

    def test_alchiq_depth2_open(self):
        entry, band = classify_dl("ALCHIQ", 2)
        assert band is Status.OPEN


class TestEndToEndClassification:
    def test_hand_o2_is_ptime(self):
        O = ontology(
            "forall x (x = x -> (Hand(x) -> exists y (hasFinger(x,y) & Thumb(y))))",
            name="O2")
        c = classify_ontology(O)
        assert c.band is Status.DICHOTOMY
        assert c.verdict is Verdict.PTIME

    def test_disjunctive_is_conp_hard(self):
        O = ontology("forall x (x = x -> (C(x) -> (A(x) | B(x))))")
        c = classify_ontology(O, mat_kwargs={"max_elems": 1, "max_facts": 1})
        assert c.verdict is Verdict.CONP_HARD

    def test_dl_source_improves_band(self):
        """ALCHIF depth-2 TBoxes profile as uGF2-(2,f) (no dichotomy) but
        classify as DICHOTOMY through the DL view."""
        tbox = parse_dl_ontology(
            "A sub some R (B and some S C)\nfunc(R)")
        c = classify_dl_ontology(tbox, check_mat=False)
        assert c.band is Status.DICHOTOMY

    def test_summary_renders(self):
        O = ontology("forall x,y (R(x,y) -> A(x))")
        text = classify_ontology(O, check_mat=False).summary()
        assert "fragment" in text and "band" in text


class TestUnravellingTolerance:
    ODD_CYCLE = ontology(
        "forall x (x = x -> (A(x) -> (exists y (R(x,y) & A(y)) -> E(x))))\n"
        "forall x (x = x -> (~A(x) -> (exists y (R(x,y) & ~A(y)) -> E(x))))\n"
        "forall x,y (R(x,y) -> (E(x) -> E(y)))\n"
        "forall x,y (R(x,y) -> (E(y) -> E(x)))",
        name="Example6")

    def test_example6_not_tolerant(self):
        triangle = make_instance("R(a,b)", "R(b,c)", "R(c,a)")
        ok, violations = check_unravelling_tolerance(
            self.ODD_CYCLE, [triangle], unravel_depth=3, confirm_depth=5)
        assert not ok
        assert violations

    def test_horn_propagation_tolerant(self):
        O = ontology("forall x,y (R(x,y) -> (A(x) -> A(y)))")
        triangle = make_instance("R(a,b)", "R(b,c)", "R(c,a)", "A(a)")
        ok, violations = check_unravelling_tolerance(
            O, [triangle], unravel_depth=3)
        assert ok and not violations

    def test_flavour_selection(self):
        counting = ontology(
            "forall x (x = x -> (H(x) -> exists>=2 y (R(x,y))))")
        assert default_flavour(counting) == "uGC2"
        plain = ontology("forall x,y (R(x,y) -> A(x))")
        assert default_flavour(plain) == "uGF"
