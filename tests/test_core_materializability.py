"""Tests for materializability / disjunction property (Section 3)."""

import pytest

from repro.core.materializability import (
    MatStatus, candidate_instances, candidate_queries,
    check_materializability, is_horn,
)
from repro.logic.instance import make_instance
from repro.logic.ontology import Ontology, ontology

# The intro example, with "exactly 2" standing in for "exactly 5" to keep
# instances small (the phenomenon is identical).
O1_LOWER = "forall x (x = x -> (Hand(x) -> exists>=2 y (hasFinger(x,y))))"
O1_UPPER = "forall x (x = x -> (Hand(x) -> ~(exists>=3 y (hasFinger(x,y)))))"
O2_THUMB = "forall x (x = x -> (Hand(x) -> exists y (hasFinger(x,y) & Thumb(y))))"

HAND_WITNESS = make_instance("Hand(h)", "hasFinger(h,f1)", "hasFinger(h,f2)")


class TestHornShortcut:
    def test_horn_detected(self):
        assert is_horn(ontology(O2_THUMB))
        assert is_horn(ontology("forall x,y (R(x,y) -> (A(x) -> A(y)))"))

    def test_disjunctive_not_horn(self):
        assert not is_horn(ontology(
            "forall x (x = x -> (C(x) -> (A(x) | B(x))))"))

    def test_unconvertible_not_horn(self):
        assert not is_horn(ontology("\n".join([O1_LOWER, O1_UPPER])))

    def test_horn_is_materializable(self):
        report = check_materializability(ontology(O2_THUMB))
        assert report.status is MatStatus.MATERIALIZABLE
        assert report.materializable is True


class TestCandidates:
    def test_candidate_instances_cover_all_small_shapes(self):
        sig = {"A": 1, "R": 2}
        instances = candidate_instances(sig, max_elems=2, max_facts=1)
        # 2 unary + 4 binary atoms = 6 singleton instances
        assert len(instances) == 6

    def test_candidate_queries_shapes(self):
        queries = candidate_queries({"A": 1, "R": 2})
        arities = {q.arity for q in queries}
        assert arities == {1, 2}
        # atomic unary, atomic binary, 2 projections, 1 R-A combination
        assert len(queries) == 5


class TestIntroExample:
    """The paper's motivating O1/O2 pair (Section 1)."""

    def test_o1_alone_materializable(self):
        # Lower bound only: Horn, hence materializable.
        assert check_materializability(
            ontology(O1_LOWER)).status is MatStatus.MATERIALIZABLE

    def test_o2_alone_materializable(self):
        assert check_materializability(
            ontology(O2_THUMB)).status is MatStatus.MATERIALIZABLE

    def test_union_not_materializable(self):
        union = ontology("\n".join([O1_LOWER, O1_UPPER, O2_THUMB]),
                         name="O1+O2")
        report = check_materializability(
            union, max_elems=0, max_facts=0,
            extra_instances=[HAND_WITNESS])
        assert report.status is MatStatus.NOT_MATERIALIZABLE
        witness = report.witness
        assert witness is not None
        # The witness is the Thumb(f1) v Thumb(f2) disjunction.
        preds = {atom.pred for q, _ in witness.disjuncts for atom in q.atoms}
        assert preds == {"Thumb"}


class TestDisjunctionProperty:
    def test_simple_disjunctive_ontology_not_materializable(self):
        O = ontology("forall x (x = x -> (C(x) -> (A(x) | B(x))))")
        report = check_materializability(O, max_elems=1, max_facts=1)
        assert report.status is MatStatus.NOT_MATERIALIZABLE

    def test_omat_ptime_not_ugf_but_search_is_syntax_agnostic(self):
        """Example 1's O_Mat/PTime = forall x A(x) | forall x B(x) is not
        materializable (but also not uGF; Theorem 3 does not apply)."""
        from repro.logic.syntax import Atom, Eq, Forall, Or, Var
        x = Var("x")
        sentence = Or.of(
            Forall((x,), Eq(x, x), Atom("A", (x,))),
            Forall((x,), Eq(x, x), Atom("B", (x,))),
        )
        O = Ontology([sentence], name="OMat/PTime")
        # the witness is D = {A(w0), B(w1)}: A(w1) v B(w0) is certain
        report = check_materializability(O, max_elems=2, max_facts=2)
        assert report.status is MatStatus.NOT_MATERIALIZABLE

    def test_example6_needs_three_disjuncts(self):
        """The Example-6 (odd cycle) ontology fails the disjunction property
        on a single edge, but only with three disjuncts."""
        O = ontology(
            "forall x (x = x -> (A(x) -> (exists y (R(x,y) & A(y)) -> E(x))))\n"
            "forall x (x = x -> (~A(x) -> (exists y (R(x,y) & ~A(y)) -> E(x))))\n"
            "forall x,y (R(x,y) -> (E(x) -> E(y)))\n"
            "forall x,y (R(x,y) -> (E(y) -> E(x)))",
            name="Ex6")
        edge = make_instance("R(a,b)")
        two = check_materializability(
            O, max_elems=0, max_facts=0, max_disjuncts=2,
            extra_instances=[edge])
        assert two.status is MatStatus.MATERIALIZABLE_UP_TO_BOUND
        three = check_materializability(
            O, max_elems=0, max_facts=0, max_disjuncts=3,
            extra_instances=[edge])
        assert three.status is MatStatus.NOT_MATERIALIZABLE
