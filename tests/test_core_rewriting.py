"""Tests for the Theorem-5 type-based rewriting."""

import pytest

from repro.core.rewriting import TypeRewriting
from repro.datalog import goal_answers
from repro.logic.instance import make_instance
from repro.logic.ontology import ontology
from repro.logic.syntax import Const
from repro.queries.cq import parse_cq
from repro.semantics.certain import CertainEngine

PROP = ontology("forall x,y (R(x,y) -> (A(x) -> A(y)))", name="prop")
PROP_Q = parse_cq("q(x) <- A(x)")

HAND = ontology(
    "forall x (x = x -> (Hand(x) -> exists y (hasFinger(x,y) & Thumb(y))))",
    name="hand")
HAND_Q = parse_cq("q(x) <- hasFinger(x,y) & Thumb(y)")

a, b, c, d = Const("a"), Const("b"), Const("c"), Const("d")


class TestTypeMachinery:
    def test_at_most_binary_query_required(self):
        with pytest.raises(ValueError):
            TypeRewriting(PROP, parse_cq("q(x,y,z) <- T(x,y,z)"))

    def test_elem_types_realizable_and_complete(self):
        rw = TypeRewriting(PROP, PROP_Q)
        # formulas1 = [A(t1), q(t1)]; A true/false, q == A
        assert len(rw.elem_types) == 2

    def test_pair_types_project_to_elem_types(self):
        rw = TypeRewriting(PROP, PROP_Q)
        elem = set(rw.elem_types)
        for pt in rw.pair_types:
            assert pt.left in elem and pt.right in elem

    def test_propagation_pair_types_respect_rule(self):
        rw = TypeRewriting(PROP, PROP_Q)
        a_idx = 0  # A(t1) is the first unary formula
        fwd = rw.formulas2.index(
            next(f for f in rw.formulas2
                 if repr(f) == "R(t1, t2)"))
        for pt in rw.pair_types:
            if pt.bits[fwd] and pt.left.bits[a_idx]:
                assert pt.right.bits[a_idx]  # A propagates along R


class TestFixpointEvaluation:
    def test_matches_engine_on_chain(self):
        rw = TypeRewriting(PROP, PROP_Q)
        engine = CertainEngine(PROP)
        D = make_instance("A(a)", "R(a,b)", "R(b,c)", "R(z,z)", "R(c,d)")
        assert rw.answers(D) == {t[0] for t in engine.certain_answers(D, PROP_Q)}

    def test_matches_engine_on_cycle(self):
        rw = TypeRewriting(PROP, PROP_Q)
        engine = CertainEngine(PROP)
        D = make_instance("A(a)", "R(a,b)", "R(b,a)")
        assert rw.answers(D) == {t[0] for t in engine.certain_answers(D, PROP_Q)}

    def test_hand_example(self):
        rw = TypeRewriting(HAND, HAND_Q)
        engine = CertainEngine(HAND)
        D = make_instance("Hand(h)", "Hand(g)", "hasFinger(g,f)", "R(h,g)")
        assert rw.answers(D) == {t[0] for t in engine.certain_answers(D, HAND_Q)}

    def test_certain_single(self):
        rw = TypeRewriting(PROP, PROP_Q)
        D = make_instance("A(a)", "R(a,b)")
        assert rw.certain(D, b)
        assert not rw.certain(D, Const("z")) if Const("z") in D.dom() else True

    def test_polynomial_scaling_long_chain(self):
        rw = TypeRewriting(PROP, PROP_Q)
        facts = ["A(n0)"] + [f"R(n{i},n{i+1})" for i in range(60)]
        D = make_instance(*facts)
        answers = rw.answers(D)
        assert Const("n60") in answers
        assert len(answers) == 61


class TestBinaryRAQs:
    """Binary-answer rAQs through the type rewriting."""

    ROLE = ontology("forall x,y (R(x,y) -> S(x,y))", name="role-incl")
    Q = parse_cq("q(x,y) <- S(x,y)")

    def test_answers_match_engine_on_guarded_pairs(self):
        import itertools

        rw = TypeRewriting(self.ROLE, self.Q)
        engine = CertainEngine(self.ROLE)
        D = make_instance("R(a,b)", "S(c,d)")
        expected = {
            t for t in itertools.product(sorted(D.dom(), key=repr), repeat=2)
            if engine.entails(D, self.Q, t)
        }
        assert rw.answers(D) == expected

    def test_certain_single_pair(self):
        rw = TypeRewriting(self.ROLE, self.Q)
        D = make_instance("R(a,b)")
        assert rw.certain(D, (a, b))
        assert not rw.certain(D, (b, a))

    def test_orientation_matters(self):
        rw = TypeRewriting(self.ROLE, self.Q)
        D = make_instance("S(b,a)")
        assert rw.certain(D, (b, a))
        assert not rw.certain(D, (a, b))

    def test_binary_query_with_body_join(self):
        O = ontology("forall x,y (R(x,y) -> (A(x) -> S(x,y)))")
        q = parse_cq("q(x,y) <- S(x,y)")
        rw = TypeRewriting(O, q)
        engine = CertainEngine(O)
        D = make_instance("A(a)", "R(a,b)", "R(b,c)")
        assert rw.certain(D, (a, b)) == engine.entails(D, q, (a, b))
        assert rw.certain(D, (b, c)) == engine.entails(D, q, (b, c))

    def test_emission_rejected_for_binary(self):
        rw = TypeRewriting(self.ROLE, self.Q)
        with pytest.raises(ValueError):
            rw.to_datalog_program()


class TestPropertyAgreement:
    """Property-based: the rewriting agrees with the engine on random
    instances of the propagation ontology (unravelling tolerant, so the
    Theorem-5 semantics is exact)."""

    import hypothesis.strategies as st
    from hypothesis import given, settings

    elements = st.sampled_from([Const(f"e{i}") for i in range(3)])
    facts = st.one_of(
        st.builds(lambda x: __import__("repro.logic.syntax",
                                       fromlist=["Atom"]).Atom("A", (x,)),
                  elements),
        st.builds(lambda x, y: __import__("repro.logic.syntax",
                                          fromlist=["Atom"]).Atom("R", (x, y)),
                  elements, elements),
    )
    from repro.logic.instance import Interpretation as _I
    instances = st.lists(facts, min_size=1, max_size=6).map(_I)

    @given(instances)
    @settings(max_examples=30, deadline=None)
    def test_random_instances(self, instance):
        rw = TypeRewriting(PROP, PROP_Q)
        engine = CertainEngine(PROP)
        via_rw = rw.answers(instance)
        via_engine = {t[0] for t in engine.certain_answers(instance, PROP_Q)}
        assert via_rw == via_engine


class TestDatalogEmission:
    def test_program_agrees_with_fixpoint(self):
        rw = TypeRewriting(PROP, PROP_Q)
        program = rw.to_datalog_program()
        for facts in (
            ["A(a)", "R(a,b)", "R(b,c)"],
            ["R(a,b)", "R(b,a)"],
            ["A(a)", "R(b,a)"],
        ):
            D = make_instance(*facts)
            via_program = {t[0] for t in goal_answers(program, D)}
            assert via_program == rw.answers(D)

    def test_hand_program_agrees(self):
        rw = TypeRewriting(HAND, HAND_Q)
        program = rw.to_datalog_program()
        D = make_instance("Hand(h)", "hasFinger(h,f)", "Thumb(f)",
                          "hasFinger(g,f)")
        via_program = {t[0] for t in goal_answers(program, D)}
        assert via_program == rw.answers(D)

    def test_program_is_pure_datalog_for_ugf(self):
        # uGF (no equality/counting): the rewriting needs no inequality
        rw = TypeRewriting(PROP, PROP_Q)
        assert rw.to_datalog_program().is_pure_datalog()
