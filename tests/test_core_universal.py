"""Tests for hom-universal models (Lemma 2)."""

from repro.core.universal import (
    find_hom_universal_model, is_hom_universal,
    materialization_equals_universality, model_query,
)
from repro.logic.instance import make_instance
from repro.logic.ontology import ontology
from repro.logic.syntax import Atom, Const
from repro.semantics.certain import CertainEngine

HAND = ontology(
    "forall x (x = x -> (Hand(x) -> exists y (hasFinger(x,y) & Thumb(y))))",
    name="O2")


class TestModelQuery:
    def test_preserved_elements_become_answer_vars(self):
        model = make_instance("Hand(h)", "hasFinger(h,n)")
        query, answer = model_query(model, [Const("h")])
        assert query.arity == 1
        assert answer == (Const("h"),)

    def test_all_preserved(self):
        model = make_instance("R(a,b)")
        query, answer = model_query(model, [Const("a"), Const("b")])
        assert query.arity == 2


class TestHomUniversal:
    def test_chase_model_is_hom_universal(self):
        D = make_instance("Hand(h)")
        report = find_hom_universal_model(HAND, D)
        assert report.model is not None and report.complete
        assert is_hom_universal(HAND, D, report.model)

    def test_fat_model_is_not_hom_universal(self):
        """Adding unforced facts destroys universality."""
        D = make_instance("Hand(h)")
        report = find_hom_universal_model(HAND, D)
        fat = report.model.copy()
        fat.add(Atom("Broken", (Const("h"),)))
        assert not is_hom_universal(HAND, D, fat)

    def test_non_model_rejected(self):
        D = make_instance("Hand(h)")
        assert not is_hom_universal(HAND, D, D)  # misses the thumb witness

    def test_disjunctive_has_no_single_universal_model(self):
        O = ontology("forall x (x = x -> (C(x) -> (A(x) | B(x))))")
        report = find_hom_universal_model(O, make_instance("C(c)"))
        assert report.model is None

    def test_lemma2_equivalence_on_instances(self):
        instances = [
            make_instance("Hand(h)"),
            make_instance("Hand(h)", "hasFinger(h,f)"),
            make_instance("Hand(h)", "Hand(g)"),
        ]
        assert materialization_equals_universality(HAND, instances)

    def test_propagation_universal_model(self):
        O = ontology("forall x,y (R(x,y) -> (A(x) -> A(y)))")
        D = make_instance("A(a)", "R(a,b)")
        report = find_hom_universal_model(O, D)
        assert report.model is not None
        assert (Const("b"),) in report.model.tuples("A")
        assert is_hom_universal(O, D, report.model)
