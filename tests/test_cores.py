"""Tests for cores and retracts."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.logic.cores import core, hom_equivalent, is_core, retracts_onto
from repro.logic.homomorphism import has_homomorphism
from repro.logic.instance import Interpretation, make_instance
from repro.logic.syntax import Atom, Const

a, b, c = Const("a"), Const("b"), Const("c")


class TestCore:
    def test_loop_is_core_of_even_cycle(self):
        square = make_instance("E(p,q)", "E(q,r)", "E(r,s)", "E(s,p)",
                               "E(q,p)", "E(r,q)", "E(s,r)", "E(p,s)")
        loopy = square.copy()
        loopy.add(Atom("E", (a, b)))
        loopy.add(Atom("E", (b, a)))
        result = core(loopy)
        # the symmetric edge {a,b} absorbs the whole even cycle
        assert len(result.dom()) == 2

    def test_triangle_is_its_own_core(self):
        triangle = make_instance("E(x,y)", "E(y,z)", "E(z,x)")
        assert is_core(triangle)
        assert core(triangle) == triangle

    def test_core_is_hom_equivalent(self):
        path = make_instance("E(a,b)", "E(b,c)", "E(b,a)", "E(c,b)")
        reduced = core(path)
        assert hom_equivalent(path, reduced)
        assert is_core(reduced)

    def test_preserve_pins_constants(self):
        # two parallel witnesses; preserving a keeps a in the core
        D = make_instance("R(a,b)", "R(a,c)")
        reduced = core(D, preserve=[a])
        assert a in reduced.dom()
        assert len(reduced.dom()) == 2  # b and c fold together

    def test_preserved_elements_not_folded(self):
        D = make_instance("R(a,b)", "R(a,c)")
        reduced = core(D, preserve=[a, b, c])
        assert reduced == D

    def test_retracts_onto(self):
        D = make_instance("R(a,b)", "R(a,c)")
        retraction = retracts_onto(
            D, frozenset([a, b]), frozenset([a]))
        assert retraction is not None
        assert retraction[c] == b

    def test_retract_requires_preserve_subset(self):
        D = make_instance("R(a,b)")
        assert retracts_onto(D, frozenset([b]), frozenset([a])) is None


class TestCoreProperties:
    elements = st.sampled_from([Const(f"e{i}") for i in range(4)])
    facts = st.builds(lambda x, y: Atom("E", (x, y)), elements, elements)
    instances = st.lists(facts, min_size=1, max_size=6).map(Interpretation)

    @given(instances)
    @settings(max_examples=30, deadline=None)
    def test_core_is_hom_equivalent_and_minimal(self, interp):
        reduced = core(interp)
        assert hom_equivalent(interp, reduced)
        assert is_core(reduced)

    @given(instances)
    @settings(max_examples=30, deadline=None)
    def test_core_idempotent(self, interp):
        once = core(interp)
        assert core(once) == once
