"""Tests for the CSP substrate and the Theorem-8 encodings."""

import pytest

from repro.csp import (
    CSPEncoding, Template, clique_template, encode_template, is_homomorphic,
    marker_relation, path_template, random_graph_instance, solve,
)
from repro.guarded.fragments import fragment_name, profile_ontology
from repro.logic.instance import make_instance
from repro.logic.syntax import Const
from repro.semantics.modelsearch import certain_answer


K2 = clique_template(2).with_precoloring()
K3 = clique_template(3).with_precoloring()

PATH3 = random_graph_instance(3, [(0, 1), (1, 2)])
TRIANGLE = random_graph_instance(3, [(0, 1), (1, 2), (2, 0)])
SQUARE = random_graph_instance(4, [(0, 1), (1, 2), (2, 3), (3, 0)])


class TestTemplates:
    def test_clique_size(self):
        assert len(clique_template(3).dom()) == 3
        assert len(clique_template(3).interp.tuples("E")) == 6

    def test_precoloring_closure(self):
        t = clique_template(2)
        assert not t.admits_precoloring()
        assert t.with_precoloring().admits_precoloring()
        # idempotent
        tp = t.with_precoloring()
        assert tp.with_precoloring() is tp

    def test_arity_bound_enforced(self):
        with pytest.raises(ValueError):
            Template(make_instance("T(a,b,c)"))


class TestSolver:
    def test_two_coloring(self):
        assert is_homomorphic(PATH3, K2)
        assert is_homomorphic(SQUARE, K2)
        assert not is_homomorphic(TRIANGLE, K2)

    def test_three_coloring(self):
        assert is_homomorphic(TRIANGLE, K3)

    def test_solution_is_homomorphism(self):
        hom = solve(SQUARE, K2)
        assert hom is not None
        for (a, b) in SQUARE.tuples("E"):
            assert (hom[a], hom[b]) in K2.interp.tuples("E")

    def test_unknown_relation_fails(self):
        D = make_instance("F(u,v)")
        assert not is_homomorphic(D, K2)

    def test_precoloring_constrains(self):
        k0 = Const("k0")
        D = make_instance("E(u,v)", "P_k0(u)", "P_k0(v)")
        assert not is_homomorphic(D, K2)
        D2 = make_instance("E(u,v)", "P_k0(u)", "P_k1(v)")
        assert is_homomorphic(D2, K2)

    def test_ac3_agrees_with_plain_backtracking(self):
        for instance in (PATH3, TRIANGLE, SQUARE):
            assert (solve(instance, K2, use_ac3=True) is None) == \
                (solve(instance, K2, use_ac3=False) is None)


class TestEncodingShape:
    def test_eq_style_fragment(self):
        enc = encode_template(K2, style="eq")
        profile = profile_ontology(enc.ontology)
        assert profile.two_variable
        assert profile.depth == 1
        assert profile.equality
        assert not profile.counting
        assert fragment_name(enc.ontology) == "uGF2(1,=)"

    def test_counting_style_fragment(self):
        enc = encode_template(K2, style="counting")
        profile = profile_ontology(enc.ontology)
        assert profile.counting
        assert profile.depth == 1

    def test_functional_style_declares_function(self):
        enc = encode_template(K2, style="functional")
        assert enc.ontology.functional == {"F"}

    def test_marker_relations_per_element(self):
        enc = encode_template(K2, style="eq")
        sig = enc.ontology.sig()
        for elem in K2.dom():
            assert marker_relation(elem) in sig


@pytest.mark.parametrize("style", ["eq", "counting", "functional"])
class TestTheorem8Equivalence:
    """coCSP(A) <=> OMQ evaluation, on concrete instances (Theorem 8)."""

    def check(self, enc: CSPEncoding, instance, extra=2):
        expected = not is_homomorphic(instance, enc.template)
        omq_input = enc.omq_instance(instance)
        got = certain_answer(
            enc.ontology, omq_input, enc.query, (), extra=extra).holds
        assert got == expected

    def test_path(self, style):
        self.check(encode_template(K2, style=style), PATH3)

    def test_triangle(self, style):
        self.check(encode_template(K2, style=style), TRIANGLE)

    def test_precolor_conflict(self, style):
        enc = encode_template(K2, style=style)
        D = make_instance("E(u,v)", "E(v,u)", "P_k0(u)", "P_k0(v)")
        self.check(enc, D)

    def test_precolor_ok(self, style):
        enc = encode_template(K2, style=style)
        D = make_instance("E(u,v)", "E(v,u)", "P_k0(u)", "P_k1(v)")
        self.check(enc, D)


class TestConsistencyReduction:
    def test_consistency_reduct_reads_markers(self):
        enc = encode_template(K2, style="eq")
        k0 = sorted(K2.dom(), key=repr)[0]
        rel = marker_relation(k0)
        D = make_instance("E(u,v)", f"{rel}(u,w)")
        reduct = enc.consistency_reduct(D)
        pred = enc.template.precolor_pred(k0)
        assert (Const("u"),) in reduct.tuples(pred)

    def test_reduct_ignores_loops(self):
        enc = encode_template(K2, style="eq")
        k0 = sorted(K2.dom(), key=repr)[0]
        rel = marker_relation(k0)
        D = make_instance(f"{rel}(u,u)")
        reduct = enc.consistency_reduct(D)
        pred = enc.template.precolor_pred(k0)
        assert not reduct.tuples(pred)

    def test_three_coloring_round_trip(self):
        enc = encode_template(K3, style="eq")
        # the triangle is 3-colorable: query must not be certain
        omq_input = enc.omq_instance(TRIANGLE)
        assert not certain_answer(
            enc.ontology, omq_input, enc.query, (), extra=3).holds
