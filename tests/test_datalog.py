"""Tests for the Datalog(≠) substrate."""

import pytest

from repro.datalog import (
    Neq, Program, Rule, entails_goal, evaluate, goal_answers, parse_program,
    parse_rule,
)
from repro.logic.instance import make_instance
from repro.logic.syntax import Atom, Const, Var

a, b, c, d = Const("a"), Const("b"), Const("c"), Const("d")
x, y, z = Var("x"), Var("y"), Var("z")


class TestProgramConstruction:
    def test_parse_rule(self):
        rule = parse_rule("T(x,z) <- R(x,y) & T(y,z)")
        assert rule.head.pred == "T"
        assert len(rule.body) == 2

    def test_parse_rule_with_inequality(self):
        rule = parse_rule("P(x) <- R(x,y) & x != y")
        assert rule.uses_inequality()

    def test_unsafe_rule_rejected(self):
        with pytest.raises(ValueError):
            Rule(Atom("P", (x,)), [Atom("R", (y, z))])

    def test_unbound_inequality_rejected(self):
        with pytest.raises(ValueError):
            Rule(Atom("P", (x,)), [Atom("R", (x, x)), Neq(x, y)])

    def test_goal_not_in_bodies(self):
        with pytest.raises(ValueError):
            Program([parse_rule("goal(x) <- A(x)"),
                     parse_rule("B(x) <- goal(x)")])

    def test_pure_datalog_detection(self):
        p1 = parse_program("goal(x) <- A(x)")
        assert p1.is_pure_datalog()
        p2 = parse_program("goal(x) <- R(x,y) & x != y")
        assert not p2.is_pure_datalog()

    def test_constants_in_rules(self):
        rule = parse_rule("P(x) <- R(x, $a)")
        assert Const("a") in rule.body[0].args


class TestEvaluation:
    def test_transitive_closure(self):
        program = parse_program(
            "T(x,y) <- R(x,y)\n"
            "T(x,z) <- R(x,y) & T(y,z)\n"
            "goal(x,y) <- T(x,y)")
        D = make_instance("R(a,b)", "R(b,c)", "R(c,d)")
        answers = goal_answers(program, D)
        assert (a, d) in answers
        assert len(answers) == 6

    def test_naive_and_semi_naive_agree(self):
        program = parse_program(
            "T(x,y) <- R(x,y)\n"
            "T(x,z) <- T(x,y) & T(y,z)\n"
            "goal(x,y) <- T(x,y)")
        D = make_instance("R(a,b)", "R(b,c)", "R(c,a)")
        assert goal_answers(program, D, semi_naive=True) == \
            goal_answers(program, D, semi_naive=False)

    def test_inequality_semantics(self):
        program = parse_program("goal(x) <- R(x,y) & x != y")
        D = make_instance("R(a,a)", "R(b,c)")
        assert goal_answers(program, D) == {(b,)}

    def test_entails_goal(self):
        program = parse_program("goal(x) <- A(x)")
        D = make_instance("A(a)", "B(b)")
        assert entails_goal(program, D, (a,))
        assert not entails_goal(program, D, (b,))

    def test_boolean_goal(self):
        program = parse_program("goal() <- A(x) & B(x)")
        assert entails_goal(program, make_instance("A(a)", "B(a)"))
        assert not entails_goal(program, make_instance("A(a)", "B(b)"))

    def test_evaluate_keeps_edb(self):
        program = parse_program("P(x) <- A(x)")
        fixpoint = evaluate(program, make_instance("A(a)"))
        assert Atom("A", (a,)) in fixpoint
        assert Atom("P", (a,)) in fixpoint

    def test_no_rules(self):
        program = Program([])
        assert goal_answers(program, make_instance("A(a)")) == set()

    def test_same_generation_style(self):
        # derived predicate feeding another derived predicate
        program = parse_program(
            "Even(x) <- Zero(x)\n"
            "Odd(y) <- Even(x) & S(x,y)\n"
            "Even(y) <- Odd(x) & S(x,y)\n"
            "goal(x) <- Even(x)")
        D = make_instance("Zero(n0)", "S(n0,n1)", "S(n1,n2)", "S(n2,n3)")
        answers = goal_answers(program, D)
        assert answers == {(Const("n0"),), (Const("n2"),)}
