"""Differential suite for the delta-driven semi-naive engine.

Seeded random programs and the example corpus run through old-naive
evaluation (the reference semantics: full re-derivation each round) and
the new delta-driven semi-naive join — with and without strata, and under
``REPRO_FAULTS`` starvation — and must produce identical fixpoints.  A
join-counter test then proves the complexity claim: per-round candidate
enumeration scales with the delta, not the database.
"""

import pathlib
import pickle
import random

import pytest

from repro.analysis.program import optimize_program, stratify
from repro.datalog import Neq, Program, Rule, evaluate
from repro.datalog.engine import _match_body, join_counter
from repro.datalog.program import parse_program
from repro.logic.instance import Interpretation, disjoint_union
from repro.logic.syntax import Atom, Const, Null, Var
from repro.obs import Tracer
from repro.runtime import Budget, BudgetExceeded, FaultPlan, FaultSpec

from test_datalog_property import random_instance, random_program

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

X, Y, Z = Var("x"), Var("y"), Var("z")


def fixpoint_or_starved(program, instance, *, semi_naive, strata=None,
                        budget=None):
    try:
        return set(evaluate(program, instance, semi_naive=semi_naive,
                            strata=strata, budget=budget))
    except BudgetExceeded:
        return "starved"


class TestDifferentialFixpoints:
    @pytest.mark.parametrize("seed", range(40))
    def test_random_programs_agree(self, seed):
        rng = random.Random(7000 + seed)
        program = random_program(rng)
        instance = random_instance(rng)
        naive = fixpoint_or_starved(program, instance, semi_naive=False)
        semi = fixpoint_or_starved(program, instance, semi_naive=True)
        assert naive == semi, f"divergence on seed {seed}:\n{program!r}"

    @pytest.mark.parametrize("seed", range(20))
    def test_random_programs_agree_with_strata(self, seed):
        rng = random.Random(8000 + seed)
        program = random_program(rng)
        instance = random_instance(rng)
        naive = fixpoint_or_starved(program, instance, semi_naive=False)
        strat = fixpoint_or_starved(program, instance, semi_naive=True,
                                    strata=stratify(program))
        assert naive == strat, f"divergence on seed {seed}:\n{program!r}"

    @pytest.mark.parametrize("seed", range(10))
    def test_optimized_programs_agree(self, seed):
        rng = random.Random(9000 + seed)
        program = random_program(rng)
        instance = random_instance(rng)
        result = optimize_program(program)
        naive = fixpoint_or_starved(program, instance, semi_naive=False)
        opt = fixpoint_or_starved(result.program, instance, semi_naive=True,
                                  strata=result.strata)
        assert {f for f in naive if f.pred == program.goal} == \
            {f for f in opt if f.pred == program.goal}

    def test_corpus_program_agrees(self):
        text = (EXAMPLES / "programs" / "reachability.dlog").read_text()
        program = parse_program(text)
        inst = Interpretation()
        for fact in ("start(a)", "edge(a,b)", "edge(b,c)", "edge(c,a)",
                     "edge(c,d)", "label(d)", "label(b)"):
            pred, args = fact.split("(")
            args = tuple(Const(a) for a in args.rstrip(")").split(","))
            inst.add(Atom(pred, args))
        naive = fixpoint_or_starved(program, inst, semi_naive=False)
        semi = fixpoint_or_starved(program, inst, semi_naive=True)
        strat = fixpoint_or_starved(program, inst, semi_naive=True,
                                    strata=stratify(program))
        assert naive == semi == strat
        assert {f.args[0].name for f in naive if f.pred == "goal"} \
            == {"a", "b", "c"}

    def test_atomless_rule_fires_like_naive(self):
        # An all-builtin body used to never fire under semi-naive (the
        # `used_delta` flag never became true) while naive fired it.
        program = Program([
            Rule(Atom("goal", ()), [Neq(Const("a"), Const("b"))]),
        ])
        inst = Interpretation([Atom("E", (Const("a"),))])
        naive = fixpoint_or_starved(program, inst, semi_naive=False)
        semi = fixpoint_or_starved(program, inst, semi_naive=True)
        assert naive == semi
        assert Atom("goal", ()) in semi

    @pytest.mark.parametrize("seed", range(6))
    def test_both_engines_starve_identically(self, seed):
        rng = random.Random(100 + seed)
        program = random_program(rng)
        instance = random_instance(rng)

        def starved_budget():
            return Budget(timeout=60.0,
                          faults=FaultPlan([FaultSpec("deadline", period=1)]))

        naive = fixpoint_or_starved(program, instance, semi_naive=False,
                                    budget=starved_budget())
        semi = fixpoint_or_starved(program, instance, semi_naive=True,
                                   budget=starved_budget())
        assert naive == "starved" and semi == "starved"

    @pytest.mark.parametrize("seed", range(6))
    def test_env_faults_hit_both_engines(self, seed, monkeypatch):
        from repro.runtime import faults

        monkeypatch.setenv("REPRO_FAULTS", "deadline:@1")
        rng = random.Random(200 + seed)
        program = random_program(rng)
        instance = random_instance(rng)
        for semi_naive in (False, True):
            # deadline:@1 is a one-shot plan; re-arm it for each engine.
            monkeypatch.setattr(faults, "_cache", None)
            assert fixpoint_or_starved(
                program, instance, semi_naive=semi_naive,
                budget=Budget(timeout=60.0)) == "starved"


# -- complexity: round work tracks the delta, not the database ------------


def chain_reachability(n: int) -> tuple[Program, Interpretation]:
    """Single-source reachability over an n-edge chain: every semi-naive
    round derives exactly one new fact, so round work must stay O(1)."""
    program = Program([
        Rule(Atom("P", (X,)), [Atom("Src", (X,))]),
        Rule(Atom("P", (Y,)), [Atom("P", (X,)), Atom("E", (X, Y))]),
        Rule(Atom("goal", (X,)), [Atom("P", (X,))]),
    ])
    inst = Interpretation([Atom("Src", (Const("n0"),))])
    for i in range(n):
        inst.add(Atom("E", (Const(f"n{i}"), Const(f"n{i+1}"))))
    return program, inst


def semi_naive_candidates(n: int) -> int:
    program, inst = chain_reachability(n)
    join_counter.reset()
    evaluate(program, inst, semi_naive=True)
    return join_counter.candidates


class TestJoinWorkScalesWithDelta:
    def test_total_work_linear_not_quadratic(self):
        # n rounds of |delta| = 1 each: the delta-driven join does O(1)
        # work per round, so total candidates grow linearly in n.  The
        # old filter-on-delta engine re-enumerated all n P-facts against
        # the chain every round — Theta(n^2) — and fails this bound.
        small, large = semi_naive_candidates(50), semi_naive_candidates(200)
        assert large <= 6 * small, (small, large)
        assert large <= 40 * 200, large

    def test_per_round_candidates_bounded_by_delta(self):
        # Spans record candidates per round; after the first round (where
        # delta == the whole EDB) each round's join work must be a small
        # constant multiple of its delta, independent of database size.
        program, inst = chain_reachability(150)
        tracer = Tracer()
        evaluate(program, inst, semi_naive=True, tracer=tracer)
        rounds = [s for s in tracer.to_dicts()
                  if s["name"] == "datalog.round"]
        assert len(rounds) > 100
        for span in rounds[1:]:
            delta = span["attrs"]["delta"]
            candidates = span["attrs"]["candidates"]
            assert candidates <= 8 * (delta + 1), (
                span["attrs"], "round work must track |delta|, not |DB|")

    def test_match_body_only_reads_delta_buckets(self):
        # Direct unit check: with a one-fact delta, _match_body touches a
        # bounded number of candidates no matter how large `facts` is.
        program, inst = chain_reachability(400)
        fixpoint = evaluate(program, inst, semi_naive=True)
        delta = Interpretation([Atom("P", (Const("n42"),))])
        join_counter.reset()
        matches = list(_match_body(program.rules[1], fixpoint, delta))
        assert len(matches) == 1  # P(n42) & E(n42, n43)
        assert join_counter.candidates <= 8, join_counter.candidates


# -- regressions riding along ---------------------------------------------


class TestDisjointUnionCollisions:
    def test_const_and_null_clash_stay_distinct(self):
        # Both Const("x") and Null("x") clash with part 0; the old rename
        # mapped both to Null("du1_x"), silently merging them.
        part0 = Interpretation([
            Atom("A", (Const("x"),)), Atom("A", (Null("x"),))])
        part1 = Interpretation([
            Atom("B", (Const("x"), Null("x")))])
        union = disjoint_union([part0, part1])
        assert len(union.dom()) == 4
        (b_args,) = union.tuples("B")
        assert b_args[0] != b_args[1]

    def test_rename_avoids_existing_elements(self):
        # A pre-existing element spelled like a rename target must not be
        # captured by the renaming.
        part0 = Interpretation([Atom("A", (Const("x"),))])
        part1 = Interpretation([
            Atom("B", (Const("x"), Null("du1_c0_x")))])
        union = disjoint_union([part0, part1])
        assert len(union.dom()) == 3

    def test_disjoint_parts_untouched(self):
        part0 = Interpretation([Atom("A", (Const("a"),))])
        part1 = Interpretation([Atom("B", (Const("b"),))])
        union = disjoint_union([part0, part1])
        assert Atom("A", (Const("a"),)) in union
        assert Atom("B", (Const("b"),)) in union


class TestIterationCache:
    def test_iteration_is_canonical_and_cached(self):
        inst = Interpretation([Atom("R", (Const("b"), Const("a"))),
                               Atom("E", (Const("z"),))])
        first = list(inst)
        assert first == sorted(first, key=lambda a: (a.pred, repr(a)))
        assert list(inst) == first

    def test_mutation_invalidates_cache(self):
        inst = Interpretation([Atom("E", (Const("a"),))])
        list(inst)
        inst.add(Atom("E", (Const("b"),)))
        assert len(list(inst)) == 2
        inst.discard(Atom("E", (Const("a"),)))
        assert list(inst) == [Atom("E", (Const("b"),))]

    def test_copy_shares_then_diverges(self):
        inst = Interpretation([Atom("E", (Const("a"),))])
        clone = inst.copy()
        clone.add(Atom("E", (Const("b"),)))
        assert len(list(inst)) == 1 and len(list(clone)) == 2


class TestInterning:
    def test_terms_are_interned(self):
        assert Const("a") is Const("a")
        assert Null("n1") is Null("n1")
        assert Var("x") is Var("x")
        assert Const("a") != Null("a")

    def test_pickle_round_trip_reinterns(self):
        for term in (Const("a"), Null("n1"), Var("x")):
            clone = pickle.loads(pickle.dumps(term))
            assert clone is term
        atom = Atom("R", (Const("a"), Null("n1")))
        clone = pickle.loads(pickle.dumps(atom))
        assert clone == atom and hash(clone) == hash(atom)


class TestUnsafeRuleRejection:
    def test_program_rejects_bypassed_unsafe_rule(self):
        # Build a rule without running Rule.__init__ (as unpickling or
        # hand-built frozen instances can) — Program still rejects it.
        bad = object.__new__(Rule)
        object.__setattr__(bad, "head", Atom("goal", (X,)))
        object.__setattr__(bad, "body", (Atom("E", (X,)), Neq(X, Y)))
        with pytest.raises(ValueError, match="inequality variable"):
            Program([bad])

    def test_engine_raises_clear_error_not_keyerror(self):
        bad = object.__new__(Rule)
        object.__setattr__(bad, "head", Atom("goal", (X,)))
        object.__setattr__(bad, "body", (Atom("E", (X,)), Neq(X, Y)))
        facts = Interpretation([Atom("E", (Const("a"),))])
        delta = facts.copy()
        with pytest.raises(ValueError, match="not bound by any relational"):
            list(_match_body(bad, facts, delta))
