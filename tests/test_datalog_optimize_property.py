"""Differential properties of the program optimizer (satellite 2).

The contract under test: for every program, ``optimize_program`` produces a
program + strata whose goal facts are *identical* to the unoptimized,
unstratified evaluation — across the example corpus, seeded random
programs, and under injected budget starvation (both sides must raise, or
both sides must agree).
"""

import random
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import evaluate, goal_answers
from repro.datalog.program import Program, Rule, parse_program
from repro.logic.instance import make_instance
from repro.logic.syntax import Atom, Const, Var
from repro.analysis.program import optimize_program, stratify
from repro.runtime import Budget, BudgetExceeded, FaultPlan, FaultSpec

EXAMPLES = Path(__file__).parent.parent / "examples"

X, Y, Z = Var("x"), Var("y"), Var("z")
VARS = (X, Y, Z)
EDB_UNARY = ("start", "label", "mark")
EDB_BINARY = ("edge", "link")
IDB = ("p", "q", "goal")


# -- seeded random program generation ------------------------------------


def random_program(seed: int) -> Program:
    """A safe random Datalog program with predicates from a fixed pool.

    Head variables are drawn from the body's variables, so every rule is
    safe by construction; bodies mix EDB and IDB atoms so recursion, dead
    chains and subsumption pairs all occur across seeds.
    """
    rng = random.Random(seed)
    rules = []
    for _ in range(rng.randint(2, 8)):
        body = []
        for _ in range(rng.randint(1, 3)):
            if rng.random() < 0.6:
                if rng.random() < 0.5:
                    body.append(Atom(rng.choice(EDB_UNARY),
                                     (rng.choice(VARS),)))
                else:
                    body.append(Atom(rng.choice(EDB_BINARY),
                                     (rng.choice(VARS), rng.choice(VARS))))
            else:
                body.append(Atom(rng.choice(IDB[:2]), (rng.choice(VARS),)))
        body_vars = sorted({t.name for a in body for t in a.args
                            if isinstance(t, Var)})
        head_var = Var(rng.choice(body_vars))
        head = Atom(rng.choice(IDB), (head_var,))
        rules.append(Rule(head, body))
    # guarantee a goal rule so the program is non-degenerate
    rules.append(Rule(Atom("goal", (X,)), [Atom("start", (X,))]))
    return Program(rules)


def random_instance(seed: int):
    rng = random.Random(seed)
    consts = [f"c{i}" for i in range(rng.randint(1, 5))]
    facts = []
    for pred in EDB_UNARY:
        for c in consts:
            if rng.random() < 0.5:
                facts.append(f"{pred}({c})")
    for pred in EDB_BINARY:
        for _ in range(rng.randint(0, 6)):
            facts.append(f"{pred}({rng.choice(consts)},{rng.choice(consts)})")
    return make_instance(*facts)


def assert_equivalent(program: Program, instance) -> None:
    baseline = goal_answers(program, instance)
    result = optimize_program(program)
    optimized = goal_answers(result.program, instance, strata=result.strata)
    assert optimized == baseline, (
        f"optimizer changed goal facts (removed={result.removed})")


# -- seeded / property-based sweeps --------------------------------------


class TestRandomPrograms:
    @pytest.mark.parametrize("seed", range(25))
    def test_optimizer_preserves_goal_facts(self, seed):
        program = random_program(seed)
        for inst_seed in range(3):
            assert_equivalent(program, random_instance(seed * 101 + inst_seed))

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           inst_seed=st.integers(min_value=0, max_value=10_000))
    def test_hypothesis_sweep(self, seed, inst_seed):
        assert_equivalent(random_program(seed), random_instance(inst_seed))

    @pytest.mark.parametrize("seed", range(10))
    def test_idempotent(self, seed):
        result = optimize_program(random_program(seed))
        again = optimize_program(result.program)
        assert again.removed == ()
        assert again.program.rules == result.program.rules


# -- the example corpus --------------------------------------------------


class TestCorpus:
    def test_reachability_example(self):
        program = parse_program(
            (EXAMPLES / "programs" / "reachability.dlog").read_text())
        D = make_instance("start(a)", "edge(a,b)", "edge(b,c)", "label(c)",
                          "label(b)")
        assert_equivalent(program, D)

    def test_transport_rewriting(self):
        # The full Theorem 5 rewriting for transport.gf — the largest
        # program the fast path actually ships (≈120 rules).
        from repro.core.rewriting import TypeRewriting
        from repro.logic.render import load_ontology_fo
        from repro.queries.cq import parse_cq

        onto = load_ontology_fo(
            (EXAMPLES / "ontologies" / "transport.gf").read_text(),
            name="transport")
        rw = TypeRewriting(onto, parse_cq("q(x) <- Node(x)"))
        program, _ = rw.to_datalog_program_with_meta()
        D = make_instance("Edge(a,b)", "Edge(b,c)", "Hub(h)", "Terminal(t)")
        assert_equivalent(program, D)


# -- budget starvation ---------------------------------------------------


def run_with_budget(program, strata, instance, budget):
    """Evaluate and normalise: returns goal facts or the string 'starved'."""
    try:
        fixpoint = evaluate(program, instance, strata=strata, budget=budget)
    except BudgetExceeded:
        return "starved"
    return fixpoint.tuples(program.goal)


class TestBudgetStarvation:
    def starved_budget(self):
        return Budget(timeout=60.0,
                      faults=FaultPlan([FaultSpec("deadline", period=1)]))

    @pytest.mark.parametrize("seed", range(8))
    def test_both_sides_starve_or_agree(self, seed):
        program = random_program(seed)
        result = optimize_program(program)
        D = random_instance(seed)
        base = run_with_budget(program, None, D, self.starved_budget())
        opt = run_with_budget(result.program, result.strata, D,
                              self.starved_budget())
        # a per-checkpoint fault starves every evaluation round
        assert base == "starved" and opt == "starved"

    @pytest.mark.parametrize("seed", range(8))
    def test_generous_budget_agrees(self, seed):
        program = random_program(seed)
        result = optimize_program(program)
        D = random_instance(seed)
        base = run_with_budget(program, None, D, Budget(timeout=60.0))
        opt = run_with_budget(result.program, result.strata, D,
                              Budget(timeout=60.0))
        assert base != "starved"
        assert base == opt

    def test_env_fault_plan_reaches_the_engine(self, monkeypatch):
        # The REPRO_FAULTS surface: an ambient deadline:@1 plan must starve
        # a budgeted evaluation the same way an explicit FaultPlan does.
        from repro.runtime import faults

        monkeypatch.setenv("REPRO_FAULTS", "deadline:@1")
        monkeypatch.setattr(faults, "_cache", None)
        program = random_program(3)
        result = optimize_program(program)
        with pytest.raises(BudgetExceeded):
            evaluate(result.program, random_instance(3),
                     strata=result.strata, budget=Budget(timeout=60.0))

    def test_unbudgeted_evaluation_ignores_faults(self, monkeypatch):
        from repro.runtime import faults

        monkeypatch.setenv("REPRO_FAULTS", "deadline:@1")
        monkeypatch.setattr(faults, "_cache", None)
        program = random_program(3)
        result = optimize_program(program)
        D = random_instance(3)
        assert (goal_answers(result.program, D, strata=result.strata)
                == goal_answers(program, D))


# -- stratification is itself differential-tested ------------------------


class TestStrataEquivalence:
    @pytest.mark.parametrize("seed", range(15))
    def test_stratified_equals_unstratified(self, seed):
        program = random_program(seed)
        strata = stratify(program)
        D = random_instance(seed + 7)
        assert (goal_answers(program, D, strata=strata)
                == goal_answers(program, D))
