"""Property-style agreement tests for the Datalog(≠) engine.

Semi-naive and naive evaluation compute the same least fixpoint — on any
program.  Randomized (seeded, deterministic) programs and instances probe
the agreement far beyond the hand-written cases: recursive rules, multiple
IDB strata feeding each other, inequality builtins and constants.
"""

import random

import pytest

from repro.datalog import Neq, Program, Rule, evaluate, goal_answers
from repro.logic.instance import Interpretation
from repro.logic.syntax import Atom, Const, Var

X, Y, Z = Var("x"), Var("y"), Var("z")
VARS = (X, Y, Z)

# (name, arity): E* are extensional, I* intensional, goal is the output.
EDB = (("E", 1), ("R", 2), ("S", 2))
IDB = (("I1", 1), ("I2", 2))


def random_rule(rng: random.Random) -> Rule:
    """A random *safe* rule (head variables bound by relational atoms)."""
    body: list = []
    bound: list[Var] = []
    for _ in range(rng.randint(1, 3)):
        pred, arity = rng.choice(EDB + IDB)
        args = tuple(rng.choice(VARS) for _ in range(arity))
        body.append(Atom(pred, args))
        bound.extend(a for a in args if isinstance(a, Var))
    if len(set(bound)) >= 2 and rng.random() < 0.3:
        a, b = rng.sample(sorted(set(bound), key=repr), 2)
        body.append(Neq(a, b))
    head_pred, head_arity = rng.choice(IDB + (("goal", 1),))
    head_args = tuple(rng.choice(bound) for _ in range(head_arity))
    if rng.random() < 0.15:  # constants in heads are legal too
        head_args = (Const("c0"),) + head_args[1:]
    return Rule(Atom(head_pred, head_args), body)


def random_program(rng: random.Random) -> Program:
    return Program([random_rule(rng) for _ in range(rng.randint(2, 6))])


def random_instance(rng: random.Random, n_elements: int = 4) -> Interpretation:
    elements = [Const(f"c{i}") for i in range(n_elements)]
    inst = Interpretation()
    for pred, arity in EDB:
        for _ in range(rng.randint(1, 2 * n_elements)):
            inst.add(Atom(pred, tuple(rng.choice(elements)
                                      for _ in range(arity))))
    return inst


@pytest.mark.parametrize("seed", range(30))
def test_semi_naive_agrees_with_naive(seed):
    rng = random.Random(seed)
    program = random_program(rng)
    instance = random_instance(rng)
    fast = goal_answers(program, instance, semi_naive=True)
    slow = goal_answers(program, instance, semi_naive=False)
    assert fast == slow, f"divergence on seed {seed}:\n{program!r}"


@pytest.mark.parametrize("seed", range(0, 30, 3))
def test_full_fixpoints_agree(seed):
    """Not just the goal relation: the entire derived fixpoint matches."""
    rng = random.Random(1000 + seed)
    program = random_program(rng)
    instance = random_instance(rng)
    fast = evaluate(program, instance, semi_naive=True)
    slow = evaluate(program, instance, semi_naive=False)
    assert set(fast) == set(slow)


def test_transitive_closure_sanity():
    """A known-answer anchor so the generators cannot rot silently."""
    program = Program([
        Rule(Atom("I2", (X, Y)), [Atom("R", (X, Y))]),
        Rule(Atom("I2", (X, Z)), [Atom("I2", (X, Y)), Atom("R", (Y, Z))]),
        Rule(Atom("goal", (X,)), [Atom("I2", (X, X))]),
    ])
    inst = Interpretation()
    for a, b in [("c0", "c1"), ("c1", "c2"), ("c2", "c0"), ("c3", "c3")]:
        inst.add(Atom("R", (Const(a), Const(b))))
    fast = goal_answers(program, inst, semi_naive=True)
    slow = goal_answers(program, inst, semi_naive=False)
    assert fast == slow
    assert {e[0].name for e in fast} == {"c0", "c1", "c2", "c3"}
