"""Tests for the Theorem-13 decision procedure and the Example-8 family."""

import pytest

from repro.decision import (
    build_bouquet, counter_chain, decide_ptime_ontology, enumerate_bouquets,
    example8_ontology, find_one_materialization, neighbour_types, r_chain,
)
from repro.decision.alchiq import bouquet_query, is_exact_neighbourhood_realizable
from repro.decision.bouquets import ROOT, NeighbourType
from repro.dl import dl_to_ontology, parse_dl_ontology
from repro.logic.instance import make_instance
from repro.logic.syntax import Const
from repro.semantics.certain import CertainEngine

HAND_DL = parse_dl_ontology("Hand sub some hasFinger Thumb")
HAND = dl_to_ontology(HAND_DL)

UNION_DL = parse_dl_ontology(
    "Hand sub == 2 hasFinger top\nHand sub some hasFinger Thumb")
UNION = dl_to_ontology(UNION_DL)


class TestBouquetEnumeration:
    def test_neighbour_types(self):
        types = neighbour_types({"A": 1, "R": 2})
        # (out, in) in {0,1}^2 minus (0,0) = 3 edge patterns x 2 label sets
        assert len(types) == 6

    def test_build_bouquet_shape(self):
        petal = NeighbourType(frozenset(["R"]), frozenset(), frozenset(["A"]))
        bouquet = build_bouquet(frozenset(["B"]), (petal,))
        assert len(bouquet) == 3
        assert ROOT in bouquet.dom()

    def test_enumeration_is_irreflexive(self):
        from repro.guarded.decomposition import is_irreflexive
        for bouquet, root in enumerate_bouquets({"A": 1, "R": 2}, 1):
            assert is_irreflexive(bouquet)

    def test_enumeration_count_grows_with_outdegree(self):
        sig = {"A": 1, "R": 2}
        n1 = sum(1 for _ in enumerate_bouquets(sig, 1))
        n2 = sum(1 for _ in enumerate_bouquets(sig, 2))
        assert n2 > n1


class TestOneMaterialization:
    def test_hand_bouquet_has_one_materialization(self):
        bouquet = make_instance("Hand(root)")
        from repro.logic.syntax import Const
        report = find_one_materialization(HAND, bouquet, Const("root"))
        assert report.found is not None
        # the 1-materialization contains the thumb witness
        assert "Thumb" in report.found.sig()

    def test_incoming_hand_bouquet(self):
        """The thumb of a petal hand lives at depth 2: the bouquet itself
        is its own 1-materialization."""
        bouquet = make_instance(
            "Hand(n1)", "Thumb(n1)", "hasFinger(n0,root)", "hasFinger(n1,root)")
        report = find_one_materialization(HAND, bouquet, Const("root"))
        assert report.found is not None

    def test_union_two_finger_hand_has_none(self):
        bouquet = make_instance(
            "Hand(root)", "hasFinger(root,n0)", "hasFinger(root,n1)")
        report = find_one_materialization(UNION, bouquet, Const("root"))
        assert report.found is None

    def test_exact_neighbourhood_realizability(self):
        cand = make_instance("Hand(root)", "hasFinger(root,o0)", "Thumb(o0)")
        assert is_exact_neighbourhood_realizable(HAND, cand, Const("root"))
        # a hand with no finger at all cannot be an exact neighbourhood
        bare = make_instance("Hand(root)")
        assert not is_exact_neighbourhood_realizable(HAND, bare, Const("root"))

    def test_bouquet_query_preserves_base_elements(self):
        cand = make_instance("Hand(root)", "hasFinger(root,o0)", "Thumb(o0)")
        query, answer = bouquet_query(cand, [Const("root")])
        assert query.arity == 1
        assert answer == (Const("root"),)


class TestDecisionProcedure:
    """Theorem 13 end-to-end (restricted outdegree to keep tests fast)."""

    def test_hand_is_ptime(self):
        decision = decide_ptime_ontology(HAND, max_outdegree=1)
        assert decision.ptime

    def test_union_is_conp_hard(self):
        decision = decide_ptime_ontology(UNION, max_outdegree=2)
        assert not decision.ptime
        assert decision.failing_bouquet is not None

    def test_depth_bound_enforced(self):
        from repro.decision import decide_ptime_alchiq
        deep = parse_dl_ontology("A sub some R (some S B)")
        with pytest.raises(ValueError):
            decide_ptime_alchiq(deep)


class TestExample8:
    def test_ontology_shape(self):
        tbox = example8_ontology(1)
        assert tbox.depth() <= 2
        assert tbox.dl_name().startswith("ALC")

    def test_counter_chain_length(self):
        chain = counter_chain(1)
        assert len(chain.tuples("R")) == 2 ** 1 - 1
        chain2 = counter_chain(2)
        assert len(chain2.tuples("R")) == 2 ** 2 - 1

    def test_r_chain(self):
        assert len(r_chain(3).tuples("R")) == 3

    def test_counter_values_preset(self):
        chain = counter_chain(2)
        # the chain start carries the zero counter (all Xb_i)
        start = Const("c0")
        assert (start,) in chain.tuples("Xb1")
        assert (start,) in chain.tuples("Xb2")
        # the chain end carries the full counter (all X_i)
        end = Const("c3")
        assert (end,) in chain.tuples("X1")
        assert (end,) in chain.tuples("X2")

    def test_disjunction_reaches_full_counter_n1(self):
        """On the 2^1-chain with preset counter, B1 v B2 becomes certain at
        the full-counter element while neither disjunct is (the Example-8
        non-materializability witness)."""
        from repro.core.materializability import certain_disjunction
        from repro.queries.cq import parse_cq
        from repro.semantics.modelsearch import query_formula

        onto = dl_to_ontology(example8_ontology(1))
        chain = counter_chain(1)
        engine = CertainEngine(onto, backend="sat", sat_extra=2)
        target = Const("c0")
        q1 = parse_cq("q(x) <- B1(x)")
        q2 = parse_cq("q(x) <- B2(x)")
        assert not engine.entails(chain, q1, (target,))
        assert not engine.entails(chain, q2, (target,))
        disj = [query_formula(q1, (target,)), query_formula(q2, (target,))]
        assert certain_disjunction(onto, chain, disj, engine, sat_extra=2)
