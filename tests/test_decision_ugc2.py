"""Tests for Example 7 and the uGC−2(1,=) decision variant."""

import pytest

from repro.core.materializability import MatStatus, check_materializability
from repro.decision.ugc2 import decide_ptime_ugc2, reflexive_bouquets
from repro.logic.instance import make_instance
from repro.logic.ontology import ontology
from repro.queries.cq import UCQ, parse_cq
from repro.semantics.modelsearch import certain_answer

# Example 7: 1-materializations exist for every bouquet, but the ontology
# is not materializable — the witness hides on a reflexive loop.
EXAMPLE7 = ontology(
    "forall x (x = x -> (S(x,x) -> (R(x,x) -> "
    "(exists y (R(x,y) & x != y) | exists y (S(x,y) & x != y)))))\n"
    "forall x (x = x -> (exists y (R(y,x) & x != y) -> exists y (RP(x,y))))\n"
    "forall x (x = x -> (exists y (S(y,x) & x != y) -> exists y (SP(x,y))))",
    name="Example7")

LOOP = make_instance("S(a,a)", "R(a,a)")


class TestExample7Semantics:
    def test_union_certain_but_no_disjunct(self):
        qr = parse_cq("q() <- RP(x,y)")
        qs = parse_cq("q() <- SP(x,y)")
        union = UCQ((qr, qs))
        assert certain_answer(EXAMPLE7, LOOP, union, (), extra=3).holds
        assert not certain_answer(EXAMPLE7, LOOP, qr, (), extra=3).holds
        assert not certain_answer(EXAMPLE7, LOOP, qs, (), extra=3).holds

    def test_not_materializable_with_boolean_queries(self):
        report = check_materializability(
            EXAMPLE7, max_elems=0, max_facts=0,
            extra_instances=[LOOP], include_boolean=True)
        assert report.status is MatStatus.NOT_MATERIALIZABLE

    def test_missed_without_boolean_queries(self):
        """The witness disjuncts are Boolean: the answer-variable-only
        query pool cannot express them (why Example 7 defeats the
        1-materialization approach)."""
        report = check_materializability(
            EXAMPLE7, max_elems=0, max_facts=0,
            extra_instances=[LOOP], include_boolean=False)
        assert report.status is MatStatus.MATERIALIZABLE_UP_TO_BOUND

    def test_irreflexive_loop_variant_consistent(self):
        # without both loops the trigger never fires
        half = make_instance("S(a,a)")
        qr = parse_cq("q() <- RP(x,y)")
        qs = parse_cq("q() <- SP(x,y)")
        union = UCQ((qr, qs))
        assert not certain_answer(EXAMPLE7, half, union, (), extra=3).holds


class TestReflexiveBouquets:
    def test_loops_enumerated(self):
        bouquets = list(reflexive_bouquets({"R": 2, "S": 2}))
        shapes = {frozenset(b.sig()) for b, _ in bouquets}
        assert frozenset(["R", "S"]) in shapes

    def test_labels_included(self):
        bouquets = list(reflexive_bouquets({"A": 1, "R": 2}))
        assert any("A" in b.sig() for b, _ in bouquets)


class TestUGC2Decision:
    def test_example7_detected_conp_hard(self):
        decision = decide_ptime_ugc2(
            EXAMPLE7, max_outdegree=0,
            relevant_relations=["R", "S"])
        assert not decision.ptime
        failing = decision.failing_bouquet
        assert failing is not None
        assert ("R" in failing.sig()) and ("S" in failing.sig())

    def test_harmless_counting_ontology_ptime(self):
        O = ontology(
            "forall x (x = x -> (H(x) -> exists>=2 y (F(x,y))))",
            name="harmless")
        decision = decide_ptime_ugc2(O, max_outdegree=1)
        assert decision.ptime
