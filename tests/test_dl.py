"""Tests for the description logic layer."""

import pytest

from repro.dl import (
    AtomicC, ConceptInclusion, DLOntology, ExistsC, Functionality, Role,
    TopC, concept_depth, dl_to_ontology, local_functionality, parse_axiom,
    parse_concept, parse_dl_ontology, translate_concept,
)
from repro.dl.parser import DLParseError
from repro.guarded.fragments import fragment_name, sentence_depth
from repro.logic.instance import make_instance
from repro.logic.model_check import evaluate
from repro.logic.syntax import Const, Var


class TestConceptParser:
    def test_atomic(self):
        assert parse_concept("Hand") == AtomicC("Hand")

    def test_quantifiers(self):
        c = parse_concept("some hasFinger Thumb")
        assert isinstance(c, ExistsC)
        assert c.role == Role("hasFinger")

    def test_inverse_role(self):
        c = parse_concept("some hasFinger- Hand")
        assert c.role.inverse

    def test_precedence_not_and_or(self):
        c = parse_concept("not A and B or C")
        # ((not A) and B) or C
        assert c.__class__.__name__ == "OrC"

    def test_number_restrictions(self):
        c = parse_concept(">= 5 hasFinger top")
        assert c.n == 5

    def test_parentheses(self):
        c = parse_concept("some R (A and B)")
        assert c.filler.__class__.__name__ == "AndC"

    def test_malformed(self):
        with pytest.raises(DLParseError):
            parse_concept("some")

    def test_axiom_forms(self):
        assert len(parse_axiom("A sub B")) == 1
        assert len(parse_axiom("A equiv B")) == 2
        assert isinstance(parse_axiom("func(R-)")[0], Functionality)
        assert parse_axiom("R subr S")[0].__class__.__name__ == "RoleInclusion"


class TestDepthAndFeatures:
    def test_concept_depth(self):
        assert concept_depth(parse_concept("A")) == 0
        assert concept_depth(parse_concept("some R A")) == 1
        assert concept_depth(parse_concept("some R (only S A)")) == 2

    def test_tbox_depth(self):
        tbox = parse_dl_ontology("A sub some R (some S B)\nC sub D")
        assert tbox.depth() == 2

    def test_feature_detection(self):
        tbox = parse_dl_ontology(
            "A sub some R- B\nR subr S\nfunc(R)\nA sub >= 2 R B")
        feats = tbox.features()
        assert feats == {"I", "H", "F", "Q"}

    def test_local_functionality_feature(self):
        tbox = parse_dl_ontology("A sub <= 1 R top")
        assert tbox.features() == {"Fl"}
        assert "F_l" in tbox.dl_name()

    def test_dl_name(self):
        assert parse_dl_ontology("A sub B").dl_name() == "ALC"
        assert parse_dl_ontology("A sub >= 2 R B\nR subr S").dl_name() == "ALCHQ"

    def test_signature(self):
        tbox = parse_dl_ontology("A sub some R B")
        concepts, roles = tbox.signature()
        assert concepts == {"A", "B"} and roles == {"R"}


class TestTranslation:
    def test_exists_semantics(self):
        phi = translate_concept(parse_concept("some R A"))
        D = make_instance("R(a,b)", "A(b)")
        assert evaluate(phi, D, {Var("x"): Const("a")})
        assert not evaluate(phi, D, {Var("x"): Const("b")})

    def test_forall_semantics(self):
        phi = translate_concept(parse_concept("only R A"))
        assert evaluate(phi, make_instance("R(a,b)", "A(b)"), {Var("x"): Const("a")})
        assert not evaluate(phi, make_instance("R(a,b)"), {Var("x"): Const("a")})

    def test_inverse_role_semantics(self):
        phi = translate_concept(parse_concept("some R- A"))
        D = make_instance("R(b,a)", "A(b)")
        assert evaluate(phi, D, {Var("x"): Const("a")})

    def test_counting_semantics(self):
        phi = translate_concept(parse_concept(">= 2 R top"))
        assert evaluate(phi, make_instance("R(a,b)", "R(a,c)"), {Var("x"): Const("a")})
        assert not evaluate(phi, make_instance("R(a,b)"), {Var("x"): Const("a")})

    def test_atmost_semantics(self):
        phi = translate_concept(parse_concept("<= 1 R top"))
        assert evaluate(phi, make_instance("R(a,b)", "Z(c)"), {Var("x"): Const("a")})
        assert not evaluate(phi, make_instance("R(a,b)", "R(a,c)"), {Var("x"): Const("a")})

    def test_exactly_semantics(self):
        phi = translate_concept(parse_concept("== 2 R top"))
        assert evaluate(phi, make_instance("R(a,b)", "R(a,c)"), {Var("x"): Const("a")})
        assert not evaluate(phi, make_instance("R(a,b)", "R(a,c)", "R(a,d)"),
                            {Var("x"): Const("a")})

    def test_lemma7_alchiq_depth1(self):
        tbox = parse_dl_ontology(
            "Hand sub == 5 hasFinger top\nhasFinger subr hasPart")
        onto = dl_to_ontology(tbox)
        assert fragment_name(onto) == "uGC2-(1)"

    def test_lemma7_alchi_depth2(self):
        tbox = parse_dl_ontology("A sub some R (B and some S C)")
        onto = dl_to_ontology(tbox)
        assert fragment_name(onto) == "uGF2-(2)"

    def test_functionality_becomes_declaration(self):
        tbox = parse_dl_ontology("func(R)\nfunc(S-)")
        onto = dl_to_ontology(tbox)
        assert onto.functional == {"R"}
        assert onto.inverse_functional == {"S"}

    def test_inverse_functionality_axiom_semantics(self):
        tbox = parse_dl_ontology("func(S-)")
        onto = dl_to_ontology(tbox)
        axioms = onto.functionality_sentences()
        bad = make_instance("S(a,c)", "S(b,c)")
        good = make_instance("S(a,c)", "S(a,d)")
        from repro.logic.model_check import satisfies_all
        assert not satisfies_all(bad, axioms)
        assert satisfies_all(good, axioms)

    def test_translated_depth_matches(self):
        tbox = parse_dl_ontology("A sub some R (some S B)")
        onto = dl_to_ontology(tbox)
        assert max(sentence_depth(s) for s in onto.sentences) == tbox.depth()
