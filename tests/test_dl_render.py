"""Round-trip tests for the DL renderer and corpus serialization."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.bioportal import (
    CorpusSpec, generate_corpus, load_corpus, save_corpus,
)
from repro.dl import (
    AtLeastC, AtMostC, AtomicC, ConceptInclusion, DLOntology, ExistsC,
    ForallC, Functionality, NotC, OrC, AndC, Role, RoleInclusion, TopC,
    parse_concept, parse_dl_ontology, render_concept, render_ontology,
)


class TestRenderConcept:
    def test_atomic(self):
        assert render_concept(AtomicC("Hand")) == "Hand"

    def test_quantifier(self):
        c = ExistsC(Role("R"), AtomicC("A"))
        assert render_concept(c) == "some R A"

    def test_inverse_role(self):
        c = ExistsC(Role("R", inverse=True), TopC())
        assert render_concept(c) == "some R- top"

    def test_nested_parentheses(self):
        c = ExistsC(Role("R"), AndC((AtomicC("A"), AtomicC("B"))))
        text = render_concept(c)
        assert parse_concept(text) == c

    def test_counting(self):
        c = AtLeastC(3, Role("R"), AtomicC("A"))
        assert parse_concept(render_concept(c)) == c


# -- property-based round trip ------------------------------------------------

atomic = st.sampled_from([AtomicC(n) for n in ("A", "B", "C")]) | \
    st.just(TopC())
roles = st.builds(Role, st.sampled_from(["r", "s"]), st.booleans())


@st.composite
def concepts(draw, depth=2):
    if depth == 0:
        return draw(atomic)
    kind = draw(st.integers(0, 5))
    if kind == 0:
        return draw(atomic)
    if kind == 1:
        return NotC(draw(concepts(depth=depth - 1)))
    if kind == 2:
        return AndC((draw(concepts(depth=depth - 1)),
                     draw(concepts(depth=depth - 1))))
    if kind == 3:
        return OrC((draw(concepts(depth=depth - 1)),
                    draw(concepts(depth=depth - 1))))
    if kind == 4:
        return ExistsC(draw(roles), draw(concepts(depth=depth - 1)))
    return ForallC(draw(roles), draw(concepts(depth=depth - 1)))


class TestRoundTrip:
    @given(concepts())
    @settings(max_examples=80, deadline=None)
    def test_concept_round_trip(self, concept):
        assert parse_concept(render_concept(concept)) == concept

    def test_ontology_round_trip(self):
        tbox = DLOntology([
            ConceptInclusion(AtomicC("A"), ExistsC(Role("R"), AtomicC("B"))),
            ConceptInclusion(TopC(), AtMostC(1, Role("R"), TopC())),
            RoleInclusion(Role("R"), Role("S")),
            Functionality(Role("F", inverse=True)),
        ], name="demo")
        parsed = parse_dl_ontology(render_ontology(tbox), name="demo")
        assert parsed.axioms == tbox.axioms

    def test_generated_corpus_round_trips(self):
        spec = CorpusSpec(total=6, alchiq_depth1=4,
                          alchif_depth2_extra=1, deep=1, seed=11)
        for entry in generate_corpus(spec):
            parsed = parse_dl_ontology(render_ontology(entry.tbox))
            assert parsed.axioms == entry.tbox.axioms


class TestCorpusSerialization:
    def test_save_and_load(self, tmp_path):
        spec = CorpusSpec(total=5, alchiq_depth1=3,
                          alchif_depth2_extra=1, deep=1, seed=3)
        corpus = generate_corpus(spec)
        written = save_corpus(corpus, tmp_path)
        assert written == 5
        loaded = load_corpus(tmp_path)
        assert len(loaded) == 5
        by_name = {e.name: e for e in corpus}
        for entry in loaded:
            original = by_name[entry.name]
            assert entry.tbox.axioms == original.tbox.axioms
            assert entry.raw_constructors == original.raw_constructors

    def test_loaded_corpus_analyzes_identically(self, tmp_path):
        from repro.bioportal import analyze_corpus

        spec = CorpusSpec(total=8, alchiq_depth1=6,
                          alchif_depth2_extra=1, deep=1, seed=5)
        corpus = generate_corpus(spec)
        save_corpus(corpus, tmp_path)
        loaded = load_corpus(tmp_path)
        assert analyze_corpus(corpus) == analyze_corpus(loaded)
