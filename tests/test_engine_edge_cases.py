"""Edge cases across the engines: backends, rules, parsers, ontologies."""

import pytest

from repro.logic.instance import make_instance
from repro.logic.ontology import Ontology, ontology
from repro.logic.parser import ParseError, parse_formula
from repro.logic.syntax import Atom, Const, Eq, Forall, Var
from repro.queries.cq import parse_cq
from repro.semantics.certain import CertainEngine
from repro.semantics.chase import ChaseError, chase
from repro.semantics.rules import NotConvertible, convert_ontology, convert_sentence


class TestOntologyValidation:
    def test_free_variables_rejected(self):
        with pytest.raises(ValueError):
            Ontology([parse_formula("A(x)")])

    def test_size_counts_functions(self):
        O = Ontology([], functional=["F", "G"])
        assert O.size() == 2

    def test_union_merges_declarations(self):
        left = Ontology([], functional=["F"])
        right = Ontology([], inverse_functional=["G"])
        merged = left.union(right)
        assert merged.functional == {"F"}
        assert merged.inverse_functional == {"G"}

    def test_sig_includes_declared_functions(self):
        O = Ontology([], functional=["F"])
        assert O.sig() == {"F": 2}


class TestRuleConversionEdgeCases:
    def test_top_consequent_yields_nothing(self):
        O = ontology("forall x,y (R(x,y) -> true)")
        assert convert_ontology(O) == []

    def test_bottom_consequent_is_constraint(self):
        O = ontology("forall x,y (R(x,y) -> false)")
        rules = convert_ontology(O)
        assert rules and rules[0].is_constraint()

    def test_equality_body_not_convertible(self):
        with pytest.raises(NotConvertible):
            convert_sentence(parse_formula(
                "forall x,y (R(x,y) -> x = y)"))

    def test_non_universal_not_convertible(self):
        with pytest.raises(NotConvertible):
            convert_sentence(parse_formula("exists x (A(x) & B(x))"))

    def test_deep_existential_head_flattens(self):
        rules = convert_sentence(parse_formula(
            "forall x (x = x -> (A(x) -> "
            "exists y (R(x,y) & exists z (S(y,z) & B(z)))))"))
        assert len(rules) == 1
        head = rules[0].heads[0]
        assert len(head.exist_vars) == 2
        assert {a.pred for a in head.atoms} == {"R", "S", "B"}

    def test_frontier_vars_from_equality_guard(self):
        rules = convert_sentence(parse_formula(
            "forall x (x = x -> exists y (R(x,y)))"))
        assert rules[0].frontier_vars() == {Var("x")}


class TestChaseEdgeCases:
    def test_rules_argument_overrides_conversion(self):
        O = ontology("forall x (x = x -> (A(x) | forall y (R(x,y) -> B(y))))")
        # not convertible, but explicit empty rules let the chase run
        result = chase(O, make_instance("A(a)"), rules=[])
        assert result.is_consistent

    def test_unconvertible_raises(self):
        O = ontology("forall x (x = x -> (A(x) | forall y (R(x,y) -> B(y))))")
        with pytest.raises(ValueError):
            chase(O, make_instance("A(a)"))

    def test_branch_cap(self):
        O = ontology("forall x (x = x -> (C(x) -> (A(x) | B(x))))")
        big = make_instance(*(f"C(c{i})" for i in range(12)))
        with pytest.raises(ChaseError):
            chase(O, big, max_branches=16)

    def test_empty_rule_set_stops_immediately(self):
        result = chase(Ontology([]), make_instance("A(a)"), rules=[])
        assert len(result.branches) == 1
        assert result.branches[0].interp == make_instance("A(a)")


class TestEngineBackends:
    HAND = ontology(
        "forall x (x = x -> (Hand(x) -> exists y (hasFinger(x,y) & Thumb(y))))")

    def test_explicit_chase_backend(self):
        engine = CertainEngine(self.HAND, backend="chase")
        assert engine.entails(
            make_instance("Hand(h)"),
            parse_cq("q(x) <- hasFinger(x,y)"), (Const("h"),))

    def test_chase_backend_rejected_when_unconvertible(self):
        O = ontology("forall x (x = x -> (A(x) | forall y (R(x,y) -> B(y))))")
        with pytest.raises(ValueError):
            CertainEngine(O, backend="chase")

    def test_backends_agree_on_disjunction(self):
        O = ontology("forall x (x = x -> (C(x) -> (A(x) | B(x))))")
        D = make_instance("C(c)")
        q = parse_cq("q(x) <- A(x)")
        sat_engine = CertainEngine(O, backend="sat")
        auto_engine = CertainEngine(O, backend="auto")
        answer = (Const("c"),)
        assert sat_engine.entails(D, q, answer) == \
            auto_engine.entails(D, q, answer)

    def test_saturation_idempotent(self):
        engine = CertainEngine(ontology(
            "forall x,y (R(x,y) -> (A(x) -> A(y)))"))
        D = make_instance("A(a)", "R(a,b)")
        once = engine.saturate(D)
        assert engine.saturate(once) == once


class TestParserEdgeCases:
    def test_empty_parens_atom(self):
        phi = parse_formula("P()")
        assert isinstance(phi, Atom) and phi.arity == 0

    def test_nested_quantifier_same_variable(self):
        phi = parse_formula(
            "forall x (x = x -> exists y (R(x,y) & exists x (S(y,x))))")
        assert phi is not None  # shadowing parses

    def test_missing_closing_paren(self):
        with pytest.raises(ParseError):
            parse_formula("forall x (A(x)")

    def test_reserved_words_not_predicates(self):
        with pytest.raises(ParseError):
            parse_formula("forall(x)")

    def test_deeply_nested(self):
        text = "A(x)"
        for _ in range(20):
            text = f"~({text})"
        phi = parse_formula(text)
        assert phi is not None
