"""Tests for the certain-answer explanation API."""

from repro.logic.instance import make_instance
from repro.logic.model_check import satisfies_all
from repro.logic.ontology import ontology
from repro.logic.syntax import Const
from repro.queries.cq import parse_cq
from repro.semantics.certain import CertainEngine

HAND = ontology(
    "forall x (x = x -> (Hand(x) -> exists y (hasFinger(x,y) & Thumb(y))))")


class TestExplain:
    def test_positive_with_chase_witness(self, no_ambient_faults):
        engine = CertainEngine(HAND)
        exp = engine.explain(
            make_instance("Hand(h)"),
            parse_cq("q(x) <- hasFinger(x,y) & Thumb(y)"), (Const("h"),))
        assert exp.holds and bool(exp)
        assert exp.witness is not None
        assert parse_cq("q(x) <- hasFinger(x,y) & Thumb(y)").holds(
            exp.witness, (Const("h"),))

    def test_negative_with_countermodel(self):
        engine = CertainEngine(HAND)
        exp = engine.explain(
            make_instance("Hand(h)"),
            parse_cq("q(x) <- hasFinger(x,y) & Index(y)"), (Const("h"),))
        assert not exp.holds and not bool(exp)
        assert exp.witness is not None
        assert satisfies_all(exp.witness, HAND.all_sentences())
        assert not parse_cq("q(x) <- hasFinger(x,y) & Index(y)").holds(
            exp.witness, (Const("h"),))

    def test_sat_backend_explanations(self):
        # not rule-convertible: forced to the SAT backend
        O = ontology("forall x (x = x -> (A(x) | forall y (R(x,y) -> B(y))))")
        engine = CertainEngine(O)
        assert not engine.uses_chase
        exp = engine.explain(make_instance("A(a)"),
                             parse_cq("q(x) <- Z(x)"), (Const("a"),))
        assert not exp.holds
        assert exp.witness is not None

    def test_positive_sat_reason_mentions_bound(self):
        O = ontology("forall x (x = x -> (A(x) | forall y (R(x,y) -> B(y))))")
        engine = CertainEngine(O)
        exp = engine.explain(make_instance("A(a)", "R(a,a)"),
                             parse_cq("q(x) <- A(x)"), (Const("a"),))
        assert exp.holds
        assert "countermodel" in exp.reason
