"""Tests for forest models and the hooking construction."""

import pytest

from repro.guarded.forest import (
    HookingError, forest_model_via_chase, hook, is_forest_over,
)
from repro.logic.instance import Interpretation, make_instance
from repro.logic.ontology import ontology
from repro.logic.syntax import Atom, Const, Null

a, b, c = Const("a"), Const("b"), Const("c")


class TestHooking:
    def test_basic_hooking(self):
        base = make_instance("R(a,b)")
        part = Interpretation([
            Atom("S", (a, Null("n1"))), Atom("T", (Null("n1"),))])
        result = hook(base, {frozenset([a]): part})
        assert len(result) == 3

    def test_unguarded_key_rejected(self):
        base = make_instance("R(a,b)", "R(b,c)")
        part = Interpretation([Atom("S", (a, c))])
        with pytest.raises(HookingError):
            hook(base, {frozenset([a, c]): part})

    def test_part_leaking_into_base_rejected(self):
        base = make_instance("R(a,b)")
        part = Interpretation([Atom("S", (a, b))])  # touches b outside G={a}
        with pytest.raises(HookingError):
            hook(base, {frozenset([a]): part})

    def test_parts_must_not_share_nulls(self):
        base = make_instance("R(a,b)")
        shared = Null("n")
        part1 = Interpretation([Atom("S", (a, shared))])
        part2 = Interpretation([Atom("S", (b, shared))])
        with pytest.raises(HookingError):
            hook(base, {frozenset([a]): part1, frozenset([b]): part2})

    def test_hooking_at_maximal_guarded_set(self):
        base = make_instance("R(a,b)")
        part = Interpretation([
            Atom("Q", (a, b, Null("n")))])
        result = hook(base, {frozenset([a, b]): part})
        assert len(result.dom()) == 3


class TestForestRecognition:
    def test_base_itself_is_forest(self):
        base = make_instance("R(a,b)")
        assert is_forest_over(base, base)

    def test_hooked_tree_is_forest(self):
        base = make_instance("R(a,b)")
        part = Interpretation([
            Atom("S", (a, Null("n1"))), Atom("S", (Null("n1"), Null("n2")))])
        forest = hook(base, {frozenset([a]): part})
        assert is_forest_over(forest, base)

    def test_cycle_in_part_is_not_forest(self):
        base = make_instance("A(a)")
        n1, n2 = Null("n1"), Null("n2")
        bad = base.copy()
        bad.add(Atom("R", (a, n1)))
        bad.add(Atom("R", (n1, n2)))
        bad.add(Atom("R", (n2, a)))
        # the nulls hang off the unguarded pair {a} twice: cycle
        assert not is_forest_over(bad, base)

    def test_missing_base_fact_rejected(self):
        base = make_instance("R(a,b)")
        assert not is_forest_over(make_instance("R(b,a)"), base)


class TestChaseForestModels:
    HAND = ontology(
        "forall x (x = x -> (Hand(x) -> exists y (hasFinger(x,y) & Thumb(y))))")

    def test_chase_produces_forest(self):
        D = make_instance("Hand(h)", "Hand(g)")
        forest = forest_model_via_chase(self.HAND, D)
        assert forest is not None
        assert is_forest_over(forest, D)

    def test_disjunctive_returns_none(self):
        O = ontology("forall x (x = x -> (C(x) -> (A(x) | B(x))))")
        assert forest_model_via_chase(O, make_instance("C(c)")) is None

    def test_deep_witnesses_still_forest(self):
        O = ontology(
            "forall x (x = x -> (A(x) -> exists y (R(x,y) & B(y))))\n"
            "forall x (x = x -> (B(x) -> exists y (S(x,y) & C(y))))")
        D = make_instance("A(a)")
        forest = forest_model_via_chase(O, D)
        assert forest is not None
        assert is_forest_over(forest, D)
