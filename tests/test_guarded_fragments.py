"""Tests for fragment analysis: depth, uGF membership, naming, invariance."""

import pytest

from repro.guarded.fragments import (
    check_disjoint_union_invariance, default_invariance_samples,
    equality_inside, fragment_name, guarded_depth, is_open_gf,
    is_ugf_sentence, outer_guard_is_equality, profile_ontology,
    sentence_depth, to_depth_one, variable_names,
)
from repro.logic.instance import make_instance
from repro.logic.model_check import evaluate
from repro.logic.ontology import Ontology, ontology
from repro.logic.parser import parse_formula


class TestDepth:
    def test_example_2_depth_one(self):
        """Example 2: R-guard with A(x) | exists z S(y,z) has depth 1."""
        s = parse_formula("forall x,y (R(x,y) -> (A(x) | exists z (S(y,z) & B(z))))")
        assert sentence_depth(s) == 1

    def test_outer_quantifier_not_counted(self):
        s = parse_formula("forall x (x = x -> A(x))")
        assert sentence_depth(s) == 0

    def test_nested_depth(self):
        s = parse_formula(
            "forall x (x = x -> exists y (R(x,y) & exists z (S(y,z) & A(z))))")
        assert sentence_depth(s) == 2

    def test_counting_contributes_to_depth(self):
        s = parse_formula("forall x (x = x -> exists>=3 y (R(x,y)))")
        assert sentence_depth(s) == 1

    def test_guarded_depth_of_open_formula(self):
        phi = parse_formula("exists y (R(x,y) & A(y))")
        assert guarded_depth(phi) == 1


class TestMembership:
    def test_ugf_sentence(self):
        s = parse_formula("forall x,y (R(x,y) -> A(x))")
        assert is_ugf_sentence(s)

    def test_equality_outer_guard(self):
        s = parse_formula("forall x (x = x -> A(x))")
        assert is_ugf_sentence(s)
        assert outer_guard_is_equality(s)

    def test_non_reflexive_equality_guard_rejected(self):
        from repro.logic.syntax import Atom, Eq, Forall, Var
        x, y = Var("x"), Var("y")
        s = Forall((x, y), Eq(x, y), Atom("A", (x,)))
        assert not is_ugf_sentence(s)

    def test_open_gf(self):
        phi = parse_formula("exists y (R(x,y) & ~A(y))")
        assert is_open_gf(phi)

    def test_open_gf_rejects_unguarded(self):
        phi = parse_formula("exists y (A(x) & B(y))")
        assert not is_open_gf(phi)

    def test_open_gf_rejects_closed_subformula(self):
        # a sentence as subformula breaks openness
        from repro.logic.syntax import And, Atom, Forall, Var
        x, y = Var("x"), Var("y")
        inner_sentence = Forall((y,), Atom("B", (y, y)), Atom("C", (y,)))
        phi = And.of(Atom("A", (x,)), inner_sentence)
        assert not is_open_gf(phi)

    def test_equality_inside(self):
        s1 = parse_formula("forall x (x = x -> exists y (R(x,y) & x = y))")
        assert equality_inside(s1)
        s2 = parse_formula("forall x (x = x -> A(x))")
        assert not equality_inside(s2)


class TestFragmentNaming:
    def test_ugf1(self):
        O = ontology("forall x,y (R(x,y) -> (A(x) | exists z (S(y,z) & B(z))))")
        assert fragment_name(O) == "uGF(1)"

    def test_ugf2_minus_2(self):
        O = ontology(
            "forall x (x = x -> (A(x) -> exists y (R(x,y) & exists x (S(y,x) & B(x)))))")
        assert fragment_name(O) == "uGF2-(2)"

    def test_counting_fragment(self):
        O = ontology("forall x (x = x -> (H(x) -> exists>=5 y (F(x,y))))")
        assert fragment_name(O) == "uGC2-(1)"

    def test_functions_flag(self):
        O = Ontology(
            ontology("forall x,y (R(x,y) -> A(x))").sentences,
            functional=["R"])
        assert "f" in fragment_name(O)

    def test_non_ugf_is_gf(self):
        from repro.logic.syntax import Atom, Eq, Forall, Or, Var
        x = Var("x")
        s = Or.of(Forall((x,), Eq(x, x), Atom("A", (x,))),
                  Forall((x,), Eq(x, x), Atom("B", (x,))))
        assert fragment_name(Ontology([s])) == "GF"


class TestDisjointUnionInvariance:
    def test_ugf_sentence_invariant(self):
        s = parse_formula("forall x,y (R(x,y) -> A(x))")
        samples = default_invariance_samples({"R": 2, "A": 1})
        ok, witness = check_disjoint_union_invariance(s, samples)
        assert ok and witness is None

    def test_example_1_omat_not_invariant(self):
        """O_Mat/PTime = forall x A(x) | forall x B(x) is not preserved
        under disjoint unions (Example 1)."""
        from repro.logic.syntax import Atom, Eq, Forall, Or, Var
        x = Var("x")
        s = Or.of(Forall((x,), Eq(x, x), Atom("A", (x,))),
                  Forall((x,), Eq(x, x), Atom("B", (x,))))
        samples = [[make_instance("A(a)"), make_instance("B(b)")]]
        ok, witness = check_disjoint_union_invariance(s, samples)
        assert not ok and witness is not None

    def test_example_1_oucq_not_invariant(self):
        """O_UCQ/CQ does not reflect disjoint unions (Example 1)."""
        from repro.logic.syntax import Atom, Eq, Exists, Forall, Or, Var
        x = Var("x")
        s = Or.of(
            Forall((x,), Eq(x, x), Or.of(Atom("A", (x,)), Atom("B", (x,)))),
            Exists((x,), None, Atom("E", (x,))),
        )
        samples = [[make_instance("E(a)"), make_instance("F(b)")]]
        ok, _ = check_disjoint_union_invariance(s, samples)
        assert not ok


class TestDepthOneRewriting:
    def test_depth_reduced(self):
        O = ontology(
            "forall x (x = x -> (A(x) -> exists y (R(x,y) & exists x (S(y,x) & B(x)))))")
        reduced = to_depth_one(O)
        assert max(sentence_depth(s) for s in reduced.sentences) <= 1

    def test_conservative_on_models(self):
        """Models of the extension restrict to models of the original."""
        O = ontology(
            "forall x (x = x -> (A(x) -> exists y (R(x,y) & exists x (S(y,x) & B(x)))))")
        reduced = to_depth_one(O)
        model = make_instance("A(a)", "R(a,b)", "S(b,c)", "B(c)", "Def0(b)")
        if all(evaluate(s, model) for s in reduced.sentences):
            assert all(evaluate(s, model) for s in O.sentences)

    def test_certain_answers_preserved(self):
        """The extension is conservative for query answering."""
        from repro.queries.cq import parse_cq
        from repro.semantics.modelsearch import certain_answer
        from repro.logic.syntax import Const

        O = ontology(
            "forall x (x = x -> (A(x) -> exists y (R(x,y) & exists z (S(y,z) & B(z)))))")
        reduced = to_depth_one(O)
        D = make_instance("A(a)")
        q = parse_cq("q() <- S(y,z) & B(z)")
        assert certain_answer(O, D, q, (), extra=3).holds
        assert certain_answer(reduced, D, q, (), extra=3).holds

    def test_shallow_sentences_untouched(self):
        O = ontology("forall x,y (R(x,y) -> A(x))")
        assert to_depth_one(O).sentences == O.sentences


class TestVariableCounting:
    def test_two_variable_detection(self):
        O = ontology("forall x (x = x -> exists y (R(x,y) & exists x (S(y,x))))")
        assert profile_ontology(O).two_variable

    def test_three_variables(self):
        O = ontology("forall x,y,z (T(x,y,z) -> A(x))")
        profile = profile_ontology(O)
        assert not profile.two_variable
        assert profile.max_arity == 3

    def test_variable_names(self):
        s = parse_formula("forall x,y (R(x,y) -> exists z (S(y,z) & A(z)))")
        assert variable_names(s) == {"x", "y", "z"}
