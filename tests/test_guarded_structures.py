"""Tests for guarded decompositions, bouquets and unravellings."""

import pytest

from repro.guarded.decomposition import (
    binary_graph_edges, greedy_cg_tree_decomposition, gyo_acyclic, is_bouquet,
    is_cg_tree_decomposable, is_guarded_tree_decomposable, is_irreflexive,
    is_tree_interpretation, one_neighbourhood, outdegree,
)
from repro.guarded.unravel import successor_counts_preserved, unravel
from repro.logic.instance import make_instance
from repro.logic.syntax import Const

a, b, c, d = Const("a"), Const("b"), Const("c"), Const("d")

TRIANGLE = make_instance("R(a,b)", "R(b,c)", "R(c,a)")
STAR = make_instance("R(a,b)", "R(a,c)", "R(a,d)")
CHAIN = make_instance("R(a,b)", "R(b,c)")


class TestAcyclicity:
    def test_gyo_on_tree(self):
        assert gyo_acyclic([frozenset("ab"), frozenset("bc")])

    def test_gyo_on_cycle(self):
        assert not gyo_acyclic(
            [frozenset("ab"), frozenset("bc"), frozenset("ca")])

    def test_triangle_not_decomposable(self):
        """Example 4: the R-triangle has no guarded tree decomposition."""
        assert not is_guarded_tree_decomposable(TRIANGLE)

    def test_guarded_triangle_decomposable(self):
        guarded = TRIANGLE.copy()
        from repro.logic.syntax import Atom
        guarded.add(Atom("Q", (a, b, c)))
        assert is_guarded_tree_decomposable(guarded)

    def test_chain_cg_decomposable(self):
        assert is_cg_tree_decomposable(CHAIN)

    def test_disconnected_not_cg(self):
        D = make_instance("R(a,b)", "R(c,d)")
        assert is_guarded_tree_decomposable(D)
        assert not is_cg_tree_decomposable(D)

    def test_greedy_decomposition_valid(self):
        decomposition = greedy_cg_tree_decomposition(CHAIN)
        assert decomposition is not None
        assert decomposition.is_valid_for(CHAIN)

    def test_greedy_decomposition_fails_on_triangle(self):
        assert greedy_cg_tree_decomposition(TRIANGLE) is None


class TestTreeShapes:
    def test_tree_interpretation(self):
        assert is_tree_interpretation(CHAIN)
        assert not is_tree_interpretation(TRIANGLE)

    def test_binary_graph_ignores_loops(self):
        D = make_instance("R(a,a)", "R(a,b)")
        assert binary_graph_edges(D) == {frozenset((a, b))}

    def test_irreflexive(self):
        assert is_irreflexive(CHAIN)
        assert not is_irreflexive(make_instance("R(a,a)"))

    def test_outdegree(self):
        assert outdegree(STAR) == 3
        assert outdegree(CHAIN) == 2  # b touches both edges

    def test_one_neighbourhood(self):
        hood = one_neighbourhood(CHAIN, a)
        assert hood.dom() == {a, b}

    def test_bouquet_recognition(self):
        assert is_bouquet(STAR, a)
        assert not is_bouquet(CHAIN, a)  # c is at distance 2


class TestUnravelling:
    def test_example5_triangle_three_chains(self):
        """Example 5(1): the triangle unravels into three chains."""
        unr = unravel(TRIANGLE, depth=3)
        assert len(unr.interpretation.connected_components()) == 3
        # within the prefix every bag contributes one R-fact
        assert len(unr.interpretation) == len(unr.bags)

    def test_example5_tree_of_depth_one(self):
        """Example 5(2): a depth-1 tree with root a unravels into trees of
        infinite outdegree: copies multiply with depth."""
        D = make_instance("R(a,b)", "R(a,c)", "S(a,d)")
        shallow = unravel(D, depth=1)
        deep = unravel(D, depth=3)
        assert len(deep.interpretation.dom()) > len(shallow.interpretation.dom())

    def test_projection_is_homomorphism(self):
        unr = unravel(TRIANGLE, depth=2)
        proj = unr.projection()
        for fact in unr.interpretation:
            from repro.logic.syntax import Atom
            mapped = Atom(fact.pred, tuple(proj[x] for x in fact.args))
            assert mapped in TRIANGLE

    def test_copy_of_tuple(self):
        unr = unravel(TRIANGLE, depth=1)
        g = frozenset((a, b))
        copies = unr.copy_of((a, b), g)
        assert tuple(unr.up[x] for x in copies) == (a, b)

    def test_ugc2_stricter_than_ugf(self):
        """Condition (c') prunes successors that (c) allows: the uGC2
        unravelling of the depth-1 tree keeps successor counts."""
        D = make_instance("R(a,b)", "R(a,c)")
        ugf = unravel(D, depth=2, flavour="uGF")
        ugc = unravel(D, depth=2, flavour="uGC2")
        assert len(ugc.interpretation.dom()) <= len(ugf.interpretation.dom())

    def test_ugc2_preserves_successor_counts(self):
        D = make_instance("R(a,b)", "R(a,c)")
        ugc = unravel(D, depth=3, flavour="uGC2")
        assert successor_counts_preserved(D, ugc, "R")

    def test_ugf_breaks_successor_counts_on_tree(self):
        """Section 4: the uGF-unravelling of the depth-1 tree gives the
        root copy ever more successors (infinite outdegree in the limit);
        the paper's counting ontology distinguishes them.  The extra
        copies appear from tree depth 3 onwards, when a path revisits a
        guarded set (condition (c) only forbids immediate backtracking)."""
        D = make_instance("R(a,b)", "R(a,c)", "R(a,d)")
        ugf = unravel(D, depth=3, flavour="uGF")
        assert not successor_counts_preserved(D, ugf, "R")

    def test_roots_restriction(self):
        g = frozenset((a, b))
        unr = unravel(TRIANGLE, depth=2, roots=[g])
        assert len(unr.interpretation.connected_components()) == 1

    def test_invalid_root_rejected(self):
        with pytest.raises(ValueError):
            unravel(TRIANGLE, depth=1, roots=[frozenset((a,))])

    def test_node_cap(self):
        big = make_instance(*(f"R(a,b{i})" for i in range(6)),
                            *(f"R(b{i},c{i})" for i in range(6)))
        with pytest.raises(RuntimeError):
            unravel(big, depth=8, max_nodes=50)
