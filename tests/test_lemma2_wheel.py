"""Lemma 2's wheel construction: materializability without hom-universality.

The appendix proof for uGF(2) (three variables) builds an ontology whose
models for D = {C(a)} generate a 'partial wheel' W(a, y1, y2), W(a, y2, y3),
... by turning either left or right.  The two turning directions yield
forward- vs backward-infinite spoke chains, which are homomorphically
incomparable while agreeing on all CQ answers — so no hom-universal model
exists although the ontology is materializable.

The infinite models cannot be materialized; this suite checks the finite
mechanism: truncated left/right wheels of mismatched lengths are
hom-incomparable in both directions (the pigeonhole that kills any
candidate universal model), and the ontology itself parses into uGF with
three variables (outside the two-variable fragments of Figure 1).
"""

from repro.guarded.fragments import profile_ontology
from repro.logic.homomorphism import find_homomorphism
from repro.logic.instance import Interpretation
from repro.logic.ontology import ontology
from repro.logic.syntax import Atom, Const, Null

A = Const("a")

WHEEL = ontology(
    """
    forall x (x = x -> exists y (aux(x,y) & Am(y)))
    forall x (x = x -> exists y (gen(x,y) & L(y)))
    forall x (x = x -> exists y (gen(x,y) & R(y)))
    forall x (x = x -> (C(x) -> (exists y (gen(x,y) & ~L(y)) | exists y (gen(x,y) & ~R(y)))))
    forall x (x = x -> (C(x) -> exists y,z (W(x,y,z))))
    forall x,y,z (W(x,y,z) -> (exists u (gen(x,u) & ~L(u)) -> exists u (W(x,z,u))))
    forall x,y,z (W(x,y,z) -> (exists u (gen(x,u) & ~R(u)) -> exists u (W(x,u,y))))
    """,
    name="Lemma2-wheel")


def left_wheel(spokes: int) -> Interpretation:
    """Forward-turning truncation: W(a, y1, y2), W(a, y2, y3), ..."""
    out = Interpretation([Atom("C", (A,))])
    nodes = [Null(f"y{i}") for i in range(spokes + 1)]
    for i in range(spokes):
        out.add(Atom("W", (A, nodes[i], nodes[i + 1])))
    return out


def right_wheel(spokes: int) -> Interpretation:
    """Backward-turning truncation: W(a, y2, y1), W(a, y3, y2), ...

    As an abstract structure this is a spoke chain of the same shape, but
    anchored at the opposite end; mismatched truncations cannot map into
    each other.
    """
    out = Interpretation([Atom("C", (A,))])
    nodes = [Null(f"z{i}") for i in range(spokes + 1)]
    for i in range(spokes):
        out.add(Atom("W", (A, nodes[i + 1], nodes[i])))
    return out


class TestWheelFragment:
    def test_three_variables(self):
        profile = profile_ontology(WHEEL)
        assert not profile.two_variable
        assert profile.max_arity == 3
        assert profile.is_ugf

    def test_depth_at_most_two(self):
        assert profile_ontology(WHEEL).depth <= 2


class TestHomIncomparability:
    """The pigeonhole behind Lemma 2: a longer chain cannot map into a
    shorter one while fixing the hub a — in either direction."""

    def test_longer_left_into_shorter_left_fails(self):
        assert find_homomorphism(
            left_wheel(4), left_wheel(3), preserve=[A]) is None

    def test_shorter_into_longer_succeeds(self):
        assert find_homomorphism(
            left_wheel(3), left_wheel(4), preserve=[A]) is not None

    def test_left_into_equal_right_succeeds(self):
        """Equal-length truncations are isomorphic (chain shape) — only
        in the limit do the directions diverge."""
        assert find_homomorphism(
            left_wheel(3), right_wheel(3), preserve=[A]) is not None

    def test_longer_left_into_right_fails(self):
        assert find_homomorphism(
            left_wheel(4), right_wheel(3), preserve=[A]) is None

    def test_longer_right_into_left_fails(self):
        assert find_homomorphism(
            right_wheel(4), left_wheel(3), preserve=[A]) is None

    def test_no_finite_candidate_is_universal(self):
        """Any finite candidate model contains some finite spoke chain; a
        model with a longer chain refuses the homomorphism — so no finite
        interpretation is hom-universal for D = {C(a)} and the wheel
        ontology (the infinite ones are incomparable by direction)."""
        for k in range(1, 4):
            candidate = left_wheel(k)
            rival = left_wheel(k + 1)
            assert find_homomorphism(candidate, rival, preserve=[A]) is not None
            assert find_homomorphism(rival, candidate, preserve=[A]) is None
