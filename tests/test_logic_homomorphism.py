"""Unit tests for homomorphism search."""

from repro.logic.homomorphism import (
    are_isomorphic, find_homomorphism, has_homomorphism, homomorphisms,
    is_isomorphic_embedding,
)
from repro.logic.instance import make_instance
from repro.logic.syntax import Const

a, b, c = Const("a"), Const("b"), Const("c")


class TestFindHomomorphism:
    def test_identity(self):
        D = make_instance("R(a,b)")
        h = find_homomorphism(D, D)
        assert h is not None

    def test_collapse_to_loop(self):
        source = make_instance("R(x,y)", "R(y,z)")
        target = make_instance("R(a,a)")
        h = find_homomorphism(source, target)
        assert h is not None
        assert set(h.values()) == {a}

    def test_no_homomorphism_wrong_predicate(self):
        assert find_homomorphism(make_instance("R(x,y)"), make_instance("S(a,b)")) is None

    def test_no_homomorphism_triangle_to_edge(self):
        # Odd cycle has no hom into a single (2-colorable) edge.
        triangle = make_instance("E(x,y)", "E(y,z)", "E(z,x)")
        edge = make_instance("E(a,b)", "E(b,a)")
        assert find_homomorphism(triangle, edge) is None

    def test_even_cycle_to_edge(self):
        square = make_instance("E(p,q)", "E(q,r)", "E(r,s)", "E(s,p)")
        edge = make_instance("E(a,b)", "E(b,a)")
        assert find_homomorphism(square, edge) is not None

    def test_preserve_constants(self):
        source = make_instance("R(a,y)")
        target = make_instance("R(a,b)", "R(c,c)")
        h = find_homomorphism(source, target, preserve=[a])
        assert h is not None and h[a] == a
        # without preservation, mapping a -> c is also possible
        all_h = list(homomorphisms(source, target))
        assert len(all_h) == 2

    def test_preserve_impossible(self):
        source = make_instance("R(a,a)")
        target = make_instance("R(a,b)")
        assert find_homomorphism(source, target, preserve=[a]) is None

    def test_partial_binding(self):
        source = make_instance("R(x,y)")
        target = make_instance("R(a,b)", "R(c,b)")
        h = find_homomorphism(source, target, partial={Const("x"): c})
        assert h is not None and h[Const("x")] == c

    def test_unary_facts_constrain(self):
        source = make_instance("R(x,y)", "A(x)")
        target = make_instance("R(a,b)", "R(b,a)", "A(b)")
        h = find_homomorphism(source, target)
        assert h is not None and h[Const("x")] == b

    def test_static_order_agrees(self):
        source = make_instance("R(x,y)", "R(y,z)", "A(z)")
        target = make_instance("R(a,b)", "R(b,c)", "A(c)")
        h1 = find_homomorphism(source, target)
        h2 = find_homomorphism(source, target, order_static=True)
        assert (h1 is None) == (h2 is None)


class TestEnumeration:
    def test_count_homomorphisms(self):
        source = make_instance("R(x,y)")
        target = make_instance("R(a,b)", "R(b,c)", "R(a,c)")
        assert len(list(homomorphisms(source, target))) == 3

    def test_has_homomorphism(self):
        assert has_homomorphism(make_instance("A(x)"), make_instance("A(a)", "B(b)"))
        assert not has_homomorphism(make_instance("C(x)"), make_instance("A(a)"))


class TestIsomorphism:
    def test_isomorphic_paths(self):
        p1 = make_instance("R(a,b)", "R(b,c)")
        p2 = make_instance("R(u,v)", "R(v,w)")
        assert are_isomorphic(p1, p2)

    def test_not_isomorphic_different_shape(self):
        p1 = make_instance("R(a,b)", "R(b,c)")
        p2 = make_instance("R(u,v)", "R(u,w)")
        assert not are_isomorphic(p1, p2)

    def test_embedding_check(self):
        small = make_instance("R(a,b)")
        big = make_instance("R(a,b)", "S(a,b)")
        # identity embedding fails reflection: S(a,b) present in big only
        assert not is_isomorphic_embedding(small, big, {a: a, b: b})
        big2 = make_instance("R(a,b)", "R(c,c)")
        assert is_isomorphic_embedding(small, big2, {a: a, b: b})
