"""Unit tests for repro.logic.instance."""

import pytest

from repro.logic.instance import (
    Interpretation, disjoint_union, fresh_nulls, is_instance, make_instance,
)
from repro.logic.syntax import Atom, Const, Null, Var


def A(name, *args):
    return Atom(name, tuple(args))


a, b, c = Const("a"), Const("b"), Const("c")


class TestBasicOperations:
    def test_add_and_contains(self):
        inst = Interpretation()
        inst.add(A("R", a, b))
        assert A("R", a, b) in inst
        assert A("R", b, a) not in inst

    def test_add_rejects_variables(self):
        inst = Interpretation()
        with pytest.raises(ValueError):
            inst.add(A("R", Var("x"), a))

    def test_arity_clash_rejected(self):
        inst = Interpretation()
        inst.add(A("R", a, b))
        with pytest.raises(ValueError):
            inst.add(A("R", a))

    def test_len_and_iter(self):
        inst = make_instance("R(a,b)", "S(b)", "R(a,b)")
        assert len(inst) == 2
        assert {f.pred for f in inst} == {"R", "S"}

    def test_discard(self):
        inst = make_instance("R(a,b)", "S(b)")
        inst.discard(A("R", a, b))
        assert A("R", a, b) not in inst
        assert len(inst) == 1
        # discarding a missing fact is a no-op
        inst.discard(A("R", a, b))
        assert len(inst) == 1

    def test_dom_is_active_domain(self):
        inst = make_instance("R(a,b)")
        assert inst.dom() == {a, b}
        inst.discard(A("R", a, b))
        assert inst.dom() == frozenset()

    def test_equality(self):
        assert make_instance("R(a,b)", "S(c)") == make_instance("S(c)", "R(a,b)")
        assert make_instance("R(a,b)") != make_instance("R(b,a)")

    def test_copy_is_independent(self):
        inst = make_instance("R(a,b)")
        clone = inst.copy()
        clone.add(A("S", c))
        assert A("S", c) not in inst


class TestStructure:
    def test_guarded_sets_include_singletons(self):
        inst = make_instance("R(a,b)", "S(c)")
        gs = inst.guarded_sets()
        assert frozenset([a]) in gs
        assert frozenset([a, b]) in gs
        assert frozenset([c]) in gs

    def test_maximal_guarded_sets(self):
        inst = make_instance("R(a,b)", "S(b)")
        mgs = inst.maximal_guarded_sets()
        assert frozenset([a, b]) in mgs
        assert frozenset([b]) not in mgs

    def test_guarded_tuple(self):
        inst = make_instance("T(a,b,c)")
        assert inst.is_guarded_tuple([a, b])
        assert inst.is_guarded_tuple([a, b, c])
        inst2 = make_instance("R(a,b)", "R(b,c)")
        assert not inst2.is_guarded_tuple([a, c])

    def test_gaifman_edges(self):
        inst = make_instance("T(a,b,c)")
        assert inst.gaifman_edges() == {
            frozenset([a, b]), frozenset([b, c]), frozenset([a, c])
        }

    def test_connected_components(self):
        inst = make_instance("R(a,b)", "S(c)")
        comps = inst.connected_components()
        assert len(comps) == 2

    def test_distances(self):
        inst = make_instance("R(a,b)", "R(b,c)")
        dist = inst.distances_from([a])
        assert dist[a] == 0 and dist[b] == 1 and dist[c] == 2

    def test_induced_subinterpretation(self):
        inst = make_instance("R(a,b)", "R(b,c)", "A(a)")
        sub = inst.induced([a, b])
        assert A("R", a, b) in sub
        assert A("A", a) in sub
        assert A("R", b, c) not in sub

    def test_restrict_signature(self):
        inst = make_instance("R(a,b)", "A(a)")
        red = inst.restrict_signature(["R"])
        assert red.sig() == {"R": 2}


class TestCombination:
    def test_union_overlapping(self):
        u = make_instance("R(a,b)").union(make_instance("R(b,c)"))
        assert len(u) == 2
        assert u.dom() == {a, b, c}

    def test_disjoint_union_renames(self):
        d1 = make_instance("A(a)")
        d2 = make_instance("B(a)")
        du = disjoint_union([d1, d2])
        assert len(du.dom()) == 2
        assert len(du) == 2

    def test_disjoint_union_preserves_nonoverlapping(self):
        d1 = make_instance("A(a)")
        d2 = make_instance("B(b)")
        du = disjoint_union([d1, d2])
        assert A("A", a) in du and A("B", b) in du

    def test_rename(self):
        inst = make_instance("R(a,b)")
        renamed = inst.rename({a: c})
        assert A("R", c, b) in renamed


class TestHelpers:
    def test_is_instance(self):
        assert is_instance(make_instance("R(a,b)"))
        withnull = Interpretation([A("R", a, Null("n"))])
        assert not is_instance(withnull)

    def test_fresh_nulls_avoid(self):
        taken = [Null("p0"), Null("p1")]
        out = fresh_nulls("p", 2, avoid=taken)
        assert len(out) == 2
        assert not set(out) & set(taken)

    def test_make_instance_rejects_malformed(self):
        with pytest.raises(ValueError):
            make_instance("R(a,b")

    def test_match_atom(self):
        inst = make_instance("R(a,b)", "R(a,c)")
        matches = list(inst.match_atom(Atom("R", (Var("x"), Var("y"))), {Var("x"): a}))
        found = {m[Var("y")] for m in matches}
        assert found == {b, c}
