"""Unit tests for model checking and the formula parser."""

import pytest

from repro.logic.instance import make_instance
from repro.logic.model_check import evaluate, is_model_of, satisfies_all
from repro.logic.parser import ParseError, parse_formula, parse_sentences
from repro.logic.syntax import Const, Var

x = Var("x")
a, b, c = Const("a"), Const("b"), Const("c")


class TestParser:
    def test_atom(self):
        phi = parse_formula("R(x, y)")
        assert repr(phi) == "R(x, y)"

    def test_equality_and_inequality(self):
        assert repr(parse_formula("x = y")) == "x = y"
        assert repr(parse_formula("x != y")) == "~x = y"

    def test_constants_and_nulls(self):
        phi = parse_formula("R($a, _:n)")
        assert repr(phi) == "R(a, _:n)"

    def test_guard_extraction_forall(self):
        phi = parse_formula("forall x,y (R(x,y) -> A(x))")
        assert phi.guard is not None and phi.guard.pred == "R"

    def test_guard_extraction_exists(self):
        phi = parse_formula("exists y (R(x,y) & A(y))")
        assert phi.guard is not None and phi.guard.pred == "R"

    def test_unguarded_quantifier(self):
        phi = parse_formula("forall x (A(x) | B(x))")
        assert phi.guard is None

    def test_counting_quantifier(self):
        phi = parse_formula("exists>=4 y (R(x,y))")
        assert phi.n == 4

    def test_counting_requires_guard(self):
        with pytest.raises(ParseError):
            parse_formula("exists>=2 y (A(y) | B(y))")

    def test_precedence(self):
        phi = parse_formula("A(x) | B(x) & C(x)")
        # & binds tighter than |
        assert phi.__class__.__name__ == "Or"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_formula("A(x) A(y)")

    def test_parse_sentences_skips_comments(self):
        out = parse_sentences("# comment\nforall x (x = x -> A(x))\n\n")
        assert len(out) == 1


class TestEvaluate:
    def test_atom_true_false(self):
        D = make_instance("A(a)")
        assert evaluate(parse_formula("A(x)"), D, {x: a})
        assert not evaluate(parse_formula("B(x)"), D, {x: a})

    def test_unbound_variable_raises(self):
        D = make_instance("A(a)")
        with pytest.raises(ValueError):
            evaluate(parse_formula("A(x)"), D)

    def test_guarded_forall(self):
        phi = parse_formula("forall x,y (R(x,y) -> A(y))")
        assert evaluate(phi, make_instance("R(a,b)", "A(b)"))
        assert not evaluate(phi, make_instance("R(a,b)"))

    def test_equality_guard_ranges_over_domain(self):
        phi = parse_formula("forall x (x = x -> A(x))")
        assert evaluate(phi, make_instance("A(a)", "A(b)"))
        assert not evaluate(phi, make_instance("A(a)", "R(a,b)"))

    def test_guarded_exists(self):
        phi = parse_formula("forall x (x = x -> exists y (R(x,y) & A(y)))")
        assert evaluate(phi, make_instance("R(a,a)", "A(a)"))
        assert not evaluate(phi, make_instance("R(a,b)", "A(a)"))

    def test_negation(self):
        phi = parse_formula("forall x (x = x -> ~B(x))")
        assert evaluate(phi, make_instance("A(a)"))
        assert not evaluate(phi, make_instance("B(a)"))

    def test_counting_quantifier_counts_distinct(self):
        phi = parse_formula("exists>=2 y (R(x,y))")
        assert evaluate(phi, make_instance("R(a,b)", "R(a,c)"), {x: a})
        assert not evaluate(phi, make_instance("R(a,b)"), {x: a})

    def test_counting_with_body(self):
        phi = parse_formula("exists>=2 y (R(x,y) & A(y))")
        D = make_instance("R(a,b)", "R(a,c)", "A(b)")
        assert not evaluate(phi, D, {x: a})

    def test_vacuous_guard(self):
        phi = parse_formula("forall x,y (R(x,y) -> A(y))")
        assert evaluate(phi, make_instance("A(a)"))  # no R facts: vacuously true

    def test_implication_and_iff(self):
        D = make_instance("A(a)", "B(a)")
        assert evaluate(parse_formula("A(x) -> B(x)"), D, {x: a})
        assert evaluate(parse_formula("A(x) <-> B(x)"), D, {x: a})
        D2 = make_instance("A(a)")
        assert not evaluate(parse_formula("A(x) <-> B(x)"), D2, {x: a})


class TestModelOf:
    def test_is_model_of_requires_containment(self):
        D = make_instance("R(a,b)")
        M = make_instance("R(a,b)", "A(a)")
        assert is_model_of(M, D)
        assert not is_model_of(D, M)

    def test_satisfies_all(self):
        sentences = parse_sentences(
            "forall x,y (R(x,y) -> A(x))\nforall x (x = x -> ~B(x))")
        assert satisfies_all(make_instance("R(a,b)", "A(a)"), sentences)
        assert not satisfies_all(make_instance("R(a,b)"), sentences)
