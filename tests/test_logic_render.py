"""Round-trip tests for the FO formula renderer."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.logic.ontology import Ontology, ontology
from repro.logic.parser import parse_formula
from repro.logic.render import load_ontology_fo, render_formula, render_ontology_fo
from repro.logic.syntax import (
    And, Atom, Const, CountExists, Eq, Exists, Forall, Not, Or, Top, Var,
)

x, y, z = Var("x"), Var("y"), Var("z")


class TestRenderFormula:
    CASES = [
        "forall x,y (R(x,y) -> A(x))",
        "forall x (x = x -> (A(x) -> exists y (R(x,y) & B(y))))",
        "forall x (x = x -> (A(x) | ~B(x)))",
        "forall x (x = x -> exists>=3 y (R(x,y)))",
        "forall x (x = x -> (S(x,x) -> exists y (R(x,y) & x != y)))",
        "exists x (A(x) & B(x))",
    ]

    def test_known_sentences_round_trip(self):
        for text in self.CASES:
            phi = parse_formula(text)
            assert parse_formula(render_formula(phi)) == phi, text

    def test_constants_round_trip(self):
        phi = parse_formula("R($a, x)")
        assert parse_formula(render_formula(phi)) == phi

    def test_nulls_round_trip(self):
        phi = parse_formula("R(_:n, x)")
        assert parse_formula(render_formula(phi)) == phi


# -- property-based round trip -------------------------------------------------

atoms = st.one_of(
    st.builds(lambda p, t: Atom(p, (t,)), st.sampled_from(["A", "B"]),
              st.sampled_from([x, y])),
    st.builds(lambda p, s, t: Atom(p, (s, t)), st.sampled_from(["R", "S"]),
              st.sampled_from([x, y]), st.sampled_from([x, y])),
)


@st.composite
def open_formulas(draw, depth=2):
    if depth == 0:
        return draw(atoms)
    kind = draw(st.integers(0, 4))
    if kind == 0:
        return draw(atoms)
    if kind == 1:
        return Not(draw(open_formulas(depth=depth - 1)))
    if kind == 2:
        return And.of(draw(open_formulas(depth=depth - 1)),
                      draw(open_formulas(depth=depth - 1)))
    if kind == 3:
        return Or.of(draw(open_formulas(depth=depth - 1)),
                     draw(open_formulas(depth=depth - 1)))
    body = draw(open_formulas(depth=depth - 1))
    guard = Atom("G", (x, y))
    return Exists((y,), guard, body)


class TestPropertyRoundTrip:
    @given(open_formulas())
    @settings(max_examples=80, deadline=None)
    def test_round_trip(self, phi):
        rendered = render_formula(phi)
        assert parse_formula(rendered) == phi


class TestOntologyRoundTrip:
    def test_sentences_and_declarations(self):
        original = Ontology(
            ontology(
                "forall x,y (R(x,y) -> A(x))\n"
                "forall x (x = x -> exists y (F(x,y)))").sentences,
            functional=["F"], inverse_functional=["G"], name="demo")
        text = render_ontology_fo(original)
        loaded = load_ontology_fo(text, name="demo")
        assert loaded.sentences == original.sentences
        assert loaded.functional == original.functional
        assert loaded.inverse_functional == original.inverse_functional

    def test_cli_compatible(self, tmp_path):
        from repro.cli import main

        original = ontology(
            "forall x (x = x -> (Hand(x) -> exists y (hasFinger(x,y) & Thumb(y))))",
            name="hand")
        path = tmp_path / "hand.gf"
        path.write_text(render_ontology_fo(original))
        assert main(["classify", str(path), "--no-mat"]) == 0
