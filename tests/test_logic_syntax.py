"""Unit tests for repro.logic.syntax."""

import pytest

from repro.logic.syntax import (
    And, Atom, Bottom, Const, CountExists, Eq, Exists, Forall, Implies, Not,
    Null, Or, Top, Var, atoms_of, formula_size, is_sentence, nnf,
    signature_of, subformulas, substitute, uses_equality,
)

x, y, z = Var("x"), Var("y"), Var("z")


class TestTerms:
    def test_var_equality_and_hash(self):
        assert Var("x") == Var("x")
        assert Var("x") != Var("y")
        assert hash(Var("x")) == hash(Var("x"))

    def test_const_and_null_disjoint(self):
        assert Const("a") != Null("a")
        assert Const("a") != Var("a")

    def test_ordering(self):
        assert sorted([Var("b"), Var("a")]) == [Var("a"), Var("b")]


class TestAtoms:
    def test_free_vars(self):
        a = Atom("R", (x, y, Const("c")))
        assert a.free_vars() == {x, y}

    def test_arity(self):
        assert Atom("R", (x, y)).arity == 2
        assert Atom("P", ()).arity == 0

    def test_substitute(self):
        a = Atom("R", (x, y))
        b = a.substitute({x: Const("c")})
        assert b == Atom("R", (Const("c"), y))


class TestConnectives:
    def test_and_flattening(self):
        phi = And.of(Atom("A", (x,)), And.of(Atom("B", (x,)), Atom("C", (x,))))
        assert isinstance(phi, And)
        assert len(phi.conjuncts) == 3

    def test_and_identity(self):
        assert And.of() == Top()
        assert And.of(Atom("A", (x,))) == Atom("A", (x,))

    def test_and_absorbs_top(self):
        phi = And.of(Top(), Atom("A", (x,)))
        assert phi == Atom("A", (x,))

    def test_and_bottom_annihilates(self):
        assert And.of(Bottom(), Atom("A", (x,))) == Bottom()

    def test_or_dual_simplifications(self):
        assert Or.of() == Bottom()
        assert Or.of(Top(), Atom("A", (x,))) == Top()
        assert Or.of(Bottom(), Atom("A", (x,))) == Atom("A", (x,))

    def test_operator_sugar(self):
        a, b = Atom("A", (x,)), Atom("B", (x,))
        assert isinstance(a & b, And)
        assert isinstance(a | b, Or)
        assert isinstance(~a, Not)


class TestQuantifiers:
    def test_exists_free_vars(self):
        phi = Exists((y,), Atom("R", (x, y)), Atom("A", (y,)))
        assert phi.free_vars() == {x}

    def test_forall_sentence(self):
        phi = Forall((x, y), Atom("R", (x, y)), Atom("A", (x,)))
        assert is_sentence(phi)

    def test_count_exists_free_vars(self):
        phi = CountExists(3, y, Atom("R", (x, y)), Top())
        assert phi.free_vars() == {x}


class TestStructural:
    def test_subformulas_includes_guard(self):
        guard = Atom("R", (x, y))
        phi = Forall((x, y), guard, Atom("A", (x,)))
        subs = list(subformulas(phi))
        assert guard in subs
        assert Atom("A", (x,)) in subs

    def test_atoms_of(self):
        phi = Forall((x, y), Atom("R", (x, y)), Or.of(Atom("A", (x,)), Atom("B", (y,))))
        preds = {a.pred for a in atoms_of(phi)}
        assert preds == {"R", "A", "B"}

    def test_signature_of(self):
        phi = Forall((x, y), Atom("R", (x, y)), Atom("A", (x,)))
        assert signature_of(phi) == {"R": 2, "A": 1}

    def test_uses_equality(self):
        phi = Forall((x,), Eq(x, x), Atom("A", (x,)))
        assert uses_equality(phi)
        assert not uses_equality(phi, ignore_outer_guard=True)

    def test_formula_size_positive(self):
        phi = Forall((x, y), Atom("R", (x, y)), Atom("A", (x,)))
        assert formula_size(phi) >= 3


class TestSubstitute:
    def test_substitute_into_quantifier_body(self):
        phi = Exists((y,), Atom("R", (x, y)), Atom("A", (y,)))
        psi = substitute(phi, {x: Const("c")})
        assert psi.guard == Atom("R", (Const("c"), y))

    def test_substituting_bound_var_raises(self):
        phi = Exists((y,), Atom("R", (x, y)), Atom("A", (y,)))
        with pytest.raises(ValueError):
            substitute(phi, {y: Const("c")})


class TestNNF:
    def test_double_negation(self):
        phi = Not(Not(Atom("A", (x,))))
        assert nnf(phi) == Atom("A", (x,))

    def test_de_morgan(self):
        phi = Not(And.of(Atom("A", (x,)), Atom("B", (x,))))
        result = nnf(phi)
        assert isinstance(result, Or)
        assert Not(Atom("A", (x,))) in result.disjuncts

    def test_quantifier_dualization(self):
        guard = Atom("R", (x, y))
        phi = Not(Forall((y,), guard, Atom("A", (y,))))
        result = nnf(phi)
        assert isinstance(result, Exists)
        assert result.body == Not(Atom("A", (y,)))

    def test_implies_elimination(self):
        phi = Implies(Atom("A", (x,)), Atom("B", (x,)))
        result = nnf(phi)
        assert isinstance(result, Or)

    def test_nnf_keeps_truth_constants(self):
        assert nnf(Not(Top())) == Bottom()
        assert nnf(Not(Bottom())) == Top()
