"""Integration tests: tracing through the engine stack, the batch process
boundary, the CLI surface and per-phase budget timings."""

import json

import pytest

from repro.cli import main
from repro.datalog.engine import evaluate as datalog_evaluate
from repro.datalog.program import Program, parse_rule
from repro.logic.instance import make_instance
from repro.logic.ontology import ontology
from repro.obs import Tracer, load_trace, summarize_spans
from repro.runtime import Budget
from repro.runtime.faults import parse_faults
from repro.semantics.certain import CertainEngine
from repro.serving import Job, clear_caches, evaluate_batch

DISJ_ONTO = ontology(
    "forall x (Patient(x) -> Person(x))\n"
    "forall x,y (TreatedBy(x,y) -> Clinician(y))\n"
    "forall x (Patient(x) -> exists y (TreatedBy(x,y)))\n"
    "forall x (Clinician(x) -> Doctor(x) | Nurse(x))\n"
    "forall x (Doctor(x) -> ~Nurse(x))",
    name="clinic")


def distinct_jobs():
    """All-distinct (query, instance) pairs: answer-cache hit patterns are
    then identical between a shared serial cache and per-worker caches,
    which is what makes 1-vs-N span parity exact."""
    return [
        Job(query="q() <- TreatedBy(x,y)", facts=("Patient(p1)",), job_id="a"),
        Job(query="q(x) <- Person(x)",
            facts=("Patient(p2)", "Patient(p3)"), job_id="b"),
        Job(query="q() <- Doctor(c1)", facts=("Clinician(c1)",), job_id="c"),
        Job(query="q(y) <- TreatedBy(x,y)",
            facts=("TreatedBy(p4,c2)",), job_id="d"),
    ]


# -- engine span coverage -----------------------------------------------------


def test_engine_run_produces_chase_and_ladder_spans(no_ambient_faults):
    tracer = Tracer()
    engine = CertainEngine(DISJ_ONTO)
    data = make_instance("Patient(p)")
    from repro.queries.cq import parse_cq
    with tracer.activate():
        assert engine.entails(data, parse_cq("q() <- TreatedBy(x,y)"), ())
    counts = tracer.counts()
    assert counts.get("certain.decide", 0) >= 1
    assert counts.get("rung.chase", 0) >= 1
    assert counts.get("chase", 0) >= 1


def test_sat_escalation_produces_sat_and_cdcl_spans(no_ambient_faults):
    # chase_truncate forces depth exhaustion, so the ladder escalates into
    # the SAT engine: the trace must show the whole path.
    tracer = Tracer()
    engine = CertainEngine(DISJ_ONTO)
    data = make_instance("Patient(p)")
    budget = Budget(faults=parse_faults("chase_truncate:1"))
    from repro.queries.cq import parse_cq
    with tracer.activate():
        engine.entails(data, parse_cq("q() <- TreatedBy(x,y)"), (),
                       budget=budget)
    counts = tracer.counts()
    assert counts.get("rung.sat", 0) >= 1
    assert counts.get("sat.search", 0) >= 1
    assert counts.get("cdcl.solve", 0) >= 1


def test_datalog_rounds_are_traced():
    program = Program(
        rules=(parse_rule("T(x,y) <- E(x,y)"),
               parse_rule("T(x,z) <- T(x,y) & E(y,z)"),
               parse_rule("Goal(x,y) <- T(x,y)")),
        goal="Goal")
    data = make_instance("E(a,b)", "E(b,c)", "E(c,d)")
    tracer = Tracer()
    with tracer.activate():
        datalog_evaluate(program, data)
    counts = tracer.counts()
    assert counts["datalog.evaluate"] == 1
    assert counts["datalog.round"] >= 3  # chain of length 3 + empty round
    spans = {d["name"]: d for d in tracer.to_dicts()}
    assert spans["datalog.round"]["parent_id"] == \
        spans["datalog.evaluate"]["span_id"]


def test_four_engine_coverage_in_one_merged_trace(no_ambient_faults):
    """A fault-starved batch trace merged with a Datalog run covers all
    four engines plus the ladder — the full observability surface."""
    clear_caches()
    tracer = Tracer()
    budget = Budget(faults=parse_faults("chase_truncate:1"))
    evaluate_batch(DISJ_ONTO, distinct_jobs(), budget=budget, tracer=tracer)
    program = Program(rules=(parse_rule("Goal(x) <- P(x)"),), goal="Goal")
    with tracer.activate():
        datalog_evaluate(program, make_instance("P(a)"))
    engines = summarize_spans(tracer.to_dicts())["engines"]
    for engine in ("chase", "sat", "cdcl", "datalog", "ladder", "serving"):
        assert engine in engines, f"engine {engine} missing from trace"


# -- cross-process parity -----------------------------------------------------


def test_span_counts_identical_across_worker_counts(no_ambient_faults):
    jobs = distinct_jobs()

    def run(workers):
        clear_caches()
        tracer = Tracer()
        report = evaluate_batch(DISJ_ONTO, jobs, workers=workers,
                                tracer=tracer)
        return report, tracer

    serial_report, serial_tracer = run(1)
    pool_report, pool_tracer = run(2)
    assert serial_report.signatures() == pool_report.signatures()
    assert serial_tracer.counts() == pool_tracer.counts()


def test_metrics_counters_identical_across_worker_counts(no_ambient_faults):
    jobs = distinct_jobs()

    def run(workers):
        clear_caches()
        return evaluate_batch(DISJ_ONTO, jobs, workers=workers).stats

    serial, pool = run(1), run(2)
    # Histogram summaries contain timings; counters must agree exactly.
    serial_counters = {k: v for k, v in serial["metrics"].items()
                       if isinstance(v, int)}
    pool_counters = {k: v for k, v in pool["metrics"].items()
                     if isinstance(v, int)}
    assert serial_counters == pool_counters
    assert serial_counters["answer_cache_misses"] == len(jobs)
    assert serial["metrics"]["eval_seconds"]["count"] == len(jobs)


def test_untraced_batch_stays_untraced():
    clear_caches()
    tracer = Tracer(enabled=False)
    evaluate_batch(DISJ_ONTO, distinct_jobs(), workers=1, tracer=tracer)
    assert len(tracer) == 0


def test_worker_traces_merge_under_disabled_parent_silently():
    clear_caches()
    report = evaluate_batch(DISJ_ONTO, distinct_jobs(), workers=2)
    assert report.ok


# -- failure visibility -------------------------------------------------------


def test_fault_starved_batch_yields_failed_spans_not_truncated_trace(
        tmp_path, no_ambient_faults):
    clear_caches()
    tracer = Tracer()
    budget = Budget(timeout=30, faults=parse_faults("deadline:0.5"))
    report = evaluate_batch(DISJ_ONTO, distinct_jobs(), budget=budget,
                            tracer=tracer)
    assert any(r.status == "unknown" for r in report.results)
    path = tmp_path / "trace.jsonl"
    tracer.export(path)
    spans = load_trace(path)  # loadable: complete file, never truncated
    assert len(spans) == len(tracer)
    failed = [s for s in spans if s["status"] == "failed"]
    assert failed, "budget-starved rungs must surface as failed spans"
    assert any(s["name"].startswith("rung.") for s in failed)


# -- CLI surface --------------------------------------------------------------


@pytest.fixture
def clinic_files(tmp_path):
    onto = tmp_path / "clinic.gf"
    onto.write_text(
        "forall x (Patient(x) -> Person(x))\n"
        "forall x,y (TreatedBy(x,y) -> Clinician(y))\n"
        "forall x (Patient(x) -> exists y (TreatedBy(x,y)))\n")
    data = tmp_path / "db.facts"
    data.write_text("Patient(p1)\n")
    workload = tmp_path / "jobs.json"
    workload.write_text(json.dumps([
        {"query": "q() <- TreatedBy(x,y)", "facts": ["Patient(p1)"]},
        {"query": "q(x) <- Person(x)", "facts": ["Patient(p2)"]},
    ]))
    return onto, data, workload


def test_cli_evaluate_trace_and_summarize(clinic_files, tmp_path, capsys):
    onto, data, _ = clinic_files
    trace = tmp_path / "trace.jsonl"
    assert main(["evaluate", str(onto), str(data),
                 "q() <- TreatedBy(x,y)", "--trace", str(trace)]) == 0
    assert trace.exists()
    spans = load_trace(trace)
    assert any(s["name"] == "chase" for s in spans)
    capsys.readouterr()
    assert main(["trace", "summarize", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "per-engine self-time:" in out
    assert "chase" in out


def test_cli_batch_trace_covers_jobs(clinic_files, tmp_path, capsys):
    onto, _, workload = clinic_files
    clear_caches()
    trace = tmp_path / "batch.jsonl"
    assert main(["batch", str(onto), "--workload", str(workload),
                 "--trace", str(trace)]) == 0
    spans = load_trace(trace)
    names = {s["name"] for s in spans}
    assert {"batch.job", "plan.compile", "plan.evaluate",
            "certain.decide"} <= names
    assert sum(1 for s in spans if s["name"] == "batch.job") == 2
    capsys.readouterr()
    assert main(["trace", "summarize", str(trace), "--format", "json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["spans"] == len(spans)


def test_cli_trace_summarize_rejects_malformed_file(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json\n")
    assert main(["trace", "summarize", str(bad)]) == 2
    assert "error:" in capsys.readouterr().err


def test_cli_trace_summarize_rejects_missing_file(tmp_path, capsys):
    assert main(["trace", "summarize", str(tmp_path / "nope.jsonl")]) == 2
    assert "error:" in capsys.readouterr().err


def test_cli_evaluate_without_trace_writes_nothing(clinic_files, tmp_path,
                                                   capsys):
    onto, data, _ = clinic_files
    assert main(["evaluate", str(onto), str(data),
                 "q() <- TreatedBy(x,y)"]) == 0
    assert not list(tmp_path.glob("*.jsonl"))


# -- per-phase timings in Outcome.usage ---------------------------------------


def test_outcome_usage_reports_phase_seconds(no_ambient_faults):
    engine = CertainEngine(DISJ_ONTO)
    data = make_instance("Patient(p)")
    from repro.queries.cq import parse_cq
    engine.entails(data, parse_cq("q() <- TreatedBy(x,y)"), (),
                   budget=Budget())
    usage = engine.last_outcome.usage
    assert usage.phases is not None
    assert usage.phases.get("chase", 0.0) > 0.0
    assert usage.to_dict()["phases"]["chase"] == pytest.approx(
        usage.phases["chase"], abs=1e-6)


def test_phases_cover_sat_after_escalation(no_ambient_faults):
    engine = CertainEngine(DISJ_ONTO)
    data = make_instance("Patient(p)")
    budget = Budget(faults=parse_faults("chase_truncate:1"))
    from repro.queries.cq import parse_cq
    engine.entails(data, parse_cq("q() <- TreatedBy(x,y)"), (),
                   budget=budget)
    phases = engine.last_outcome.usage.phases
    assert set(phases) >= {"chase", "sat"}


def test_usage_without_phases_omits_the_key():
    usage = Budget().usage()
    assert usage.phases is None
    assert "phases" not in usage.to_dict()
