"""Unit tests for repro.obs: spans, tracers, merge, export, summarize."""

import json
import threading

import pytest

from repro.obs import (
    NULL_SPAN, NULL_TRACER, Tracer, current_tracer, load_trace,
    render_summary, summarize_spans,
)


class FakeClock:
    """A deterministic monotonic clock advancing 1s per call."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


# -- span lifecycle -----------------------------------------------------------


def test_spans_nest_with_parent_ids():
    tracer = Tracer()
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            pass
        with tracer.span("sibling") as sibling:
            pass
    assert outer.parent_id is None
    assert inner.parent_id == outer.span_id
    assert sibling.parent_id == outer.span_id
    assert len(tracer) == 3


def test_span_ids_are_unique_and_ordered():
    tracer = Tracer()
    with tracer.span("a"):
        with tracer.span("b"):
            pass
    ids = [d["span_id"] for d in tracer.to_dicts()]
    assert len(ids) == len(set(ids))
    assert ids == sorted(ids)


def test_span_records_monotonic_elapsed():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("timed") as span:
        pass
    assert span.elapsed == pytest.approx(1.0)
    (d,) = tracer.to_dicts()
    assert d["elapsed"] == pytest.approx(1.0)
    assert d["end"] > d["start"]


def test_span_attributes_via_kwargs_and_set():
    tracer = Tracer()
    with tracer.span("s", depth=6) as span:
        span.set(steps=12, truncated=False)
    (d,) = tracer.to_dicts()
    assert d["attrs"] == {"depth": 6, "steps": 12, "truncated": False}


def test_escaping_exception_marks_span_failed_and_propagates():
    tracer = Tracer()
    with pytest.raises(RuntimeError, match="boom"):
        with tracer.span("outer"):
            with tracer.span("inner"):
                raise RuntimeError("boom")
    inner, outer = sorted(tracer.to_dicts(), key=lambda d: d["name"])
    assert inner["status"] == "failed"
    assert "boom" in inner["error"]
    assert outer["status"] == "failed"  # it escaped this one too


def test_explicit_fail_without_raising():
    tracer = Tracer()
    with tracer.span("rung") as span:
        span.fail("budget: deadline exhausted")
    (d,) = tracer.to_dicts()
    assert d["status"] == "failed"
    assert d["error"] == "budget: deadline exhausted"


# -- disabled tracer ----------------------------------------------------------


def test_disabled_tracer_hands_out_the_shared_null_span():
    tracer = Tracer(enabled=False)
    span = tracer.span("anything", attr=1)
    assert span is NULL_SPAN
    with span as s:
        s.set(x=1)
        s.fail("ignored")
    assert s.elapsed == 0.0
    assert len(tracer) == 0
    assert tracer.to_dicts() == []


def test_null_span_does_not_swallow_exceptions():
    with pytest.raises(ValueError):
        with NULL_TRACER.span("x"):
            raise ValueError("through")


# -- ambient activation -------------------------------------------------------


def test_current_tracer_defaults_to_null():
    assert current_tracer() is NULL_TRACER


def test_activate_installs_and_restores():
    outer, inner = Tracer(), Tracer()
    with outer.activate():
        assert current_tracer() is outer
        with inner.activate():
            assert current_tracer() is inner
        assert current_tracer() is outer
    assert current_tracer() is NULL_TRACER


def test_activation_is_per_thread():
    tracer = Tracer()
    seen = []

    def worker():
        seen.append(current_tracer())

    with tracer.activate():
        t = threading.Thread(target=worker)
        t.start()
        t.join()
    assert seen == [NULL_TRACER]


# -- merge --------------------------------------------------------------------


def _worker_dump(names):
    worker = Tracer()
    with worker.span(names[0]):
        for name in names[1:]:
            with worker.span(name):
                pass
    return worker.to_dicts()


def test_merge_rebases_ids_and_remaps_parents():
    driver = Tracer()
    with driver.span("local"):
        pass
    dump = _worker_dump(["job", "chase"])
    driver.merge(dump)
    spans = {d["name"]: d for d in driver.to_dicts()}
    assert len(spans) == 3
    assert spans["chase"]["parent_id"] == spans["job"]["span_id"]
    assert spans["job"]["parent_id"] is None
    ids = [d["span_id"] for d in driver.to_dicts()]
    assert len(ids) == len(set(ids))


def test_merge_reparents_roots_under_parent_id():
    driver = Tracer()
    with driver.span("batch") as batch:
        pass
    driver.merge(_worker_dump(["job"]), parent_id=batch.span_id)
    spans = {d["name"]: d for d in driver.to_dicts()}
    assert spans["job"]["parent_id"] == batch.span_id


def test_merge_in_job_order_is_deterministic():
    dumps = [_worker_dump([f"job{i}", "chase"]) for i in range(3)]

    def merged_ids():
        driver = Tracer()
        for dump in dumps:
            driver.merge(dump)
        return [(d["span_id"], d["name"]) for d in driver.to_dicts()]

    assert merged_ids() == merged_ids()


def test_merge_into_disabled_tracer_is_a_noop():
    driver = Tracer(enabled=False)
    driver.merge(_worker_dump(["job"]))
    assert len(driver) == 0


# -- export / load ------------------------------------------------------------


def test_export_load_roundtrip(tmp_path):
    tracer = Tracer()
    with tracer.span("a", k=1):
        with tracer.span("b"):
            pass
    path = tmp_path / "trace.jsonl"
    assert tracer.export(path) == 2
    spans = load_trace(path)
    assert spans == tracer.to_dicts()


def test_export_is_valid_jsonl(tmp_path):
    tracer = Tracer()
    with tracer.span("x"):
        pass
    path = tmp_path / "t.jsonl"
    tracer.export(path)
    for line in path.read_text().splitlines():
        json.loads(line)


def test_load_trace_rejects_malformed_lines(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"span_id": 1, "name": "ok"}\nnot json\n')
    with pytest.raises(ValueError, match="line 2"):
        load_trace(path)


def test_load_trace_rejects_non_span_objects(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"foo": 1}\n')
    with pytest.raises(ValueError, match="span object"):
        load_trace(path)


def test_counts_by_name():
    tracer = Tracer()
    for _ in range(2):
        with tracer.span("chase"):
            pass
    with tracer.span("cdcl.solve"):
        pass
    assert tracer.counts() == {"chase": 2, "cdcl.solve": 1}


# -- thread safety ------------------------------------------------------------


def test_concurrent_spans_from_many_threads():
    tracer = Tracer()
    errors = []

    def worker(i):
        try:
            for j in range(50):
                with tracer.span(f"t{i}") as outer:
                    with tracer.span(f"t{i}.inner") as inner:
                        pass
                    assert inner.parent_id == outer.span_id
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len(tracer) == 8 * 50 * 2
    ids = [d["span_id"] for d in tracer.to_dicts()]
    assert len(ids) == len(set(ids))


# -- summarize ----------------------------------------------------------------


def _span(span_id, name, elapsed, parent=None, status="ok", attrs=None):
    d = {"span_id": span_id, "parent_id": parent, "name": name,
         "start": 0.0, "end": elapsed, "elapsed": elapsed, "status": status}
    if attrs:
        d["attrs"] = attrs
    return d


def test_summarize_self_time_subtracts_direct_children():
    spans = [
        _span(1, "certain.decide", 10.0),
        _span(2, "rung.chase", 7.0, parent=1, attrs={"bound": 4}),
        _span(3, "chase", 6.0, parent=2),
    ]
    summary = summarize_spans(spans)
    assert summary["by_name"]["certain.decide"]["self_s"] == pytest.approx(3.0)
    assert summary["by_name"]["rung.chase"]["self_s"] == pytest.approx(1.0)
    assert summary["by_name"]["chase"]["self_s"] == pytest.approx(6.0)
    # wall = roots only; self-times decompose it without double counting
    assert summary["wall_seconds"] == pytest.approx(10.0)
    total_self = sum(e["self_s"] for e in summary["by_name"].values())
    assert total_self == pytest.approx(10.0)


def test_summarize_engine_attribution():
    spans = [
        _span(1, "chase", 2.0),
        _span(2, "cdcl.solve", 1.0),
        _span(3, "datalog.evaluate", 4.0),
        _span(4, "plan.compile", 0.5),
        _span(5, "mystery", 0.25),
    ]
    engines = summarize_spans(spans)["engines"]
    assert engines["chase"] == pytest.approx(2.0)
    assert engines["cdcl"] == pytest.approx(1.0)
    assert engines["datalog"] == pytest.approx(4.0)
    assert engines["serving"] == pytest.approx(0.5)
    assert engines["other"] == pytest.approx(0.25)


def test_summarize_rungs_and_failures():
    spans = [
        _span(1, "rung.chase", 1.0, attrs={"bound": 2}),
        _span(2, "rung.chase", 2.0, attrs={"bound": 4}, status="failed"),
        _span(3, "rung.sat", 3.0, attrs={"bound": 1}),
    ]
    summary = summarize_spans(spans)
    assert summary["failed"] == 1
    rungs = {(r["rung"], r["bound"]): r for r in summary["rungs"]}
    assert rungs[("chase", 2)]["count"] == 1
    assert rungs[("chase", 4)]["failed"] == 1
    assert rungs[("sat", 1)]["total_s"] == pytest.approx(3.0)


def test_render_summary_mentions_top_spans_and_engines():
    spans = [
        _span(1, "chase", 2.0),
        _span(2, "rung.sat", 1.0, attrs={"bound": 3}, status="failed"),
    ]
    text = render_summary(summarize_spans(spans))
    assert "chase" in text
    assert "per-engine self-time:" in text
    assert "escalation rungs:" in text
    assert "1 failed" in text
