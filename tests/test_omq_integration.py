"""Integration tests: OMQ objects, Theorem 2/4 invariances, end-to-end flows."""

import pytest

from repro.core import OMQ, check_materializability, MatStatus
from repro.dl import dl_to_ontology, parse_dl_ontology
from repro.logic.instance import make_instance
from repro.logic.ontology import ontology
from repro.logic.syntax import Const
from repro.queries.cq import UCQ, parse_cq, parse_ucq
from repro.semantics.modelsearch import certain_answer

a, b, c, h = Const("a"), Const("b"), Const("c"), Const("h")

HAND = ontology(
    "forall x (x = x -> (Hand(x) -> exists y (hasFinger(x,y) & Thumb(y))))",
    name="O2")


class TestOMQ:
    def test_evaluate(self):
        omq = OMQ(HAND, parse_cq("q(x) <- hasFinger(x,y) & Thumb(y)"))
        assert omq.evaluate(make_instance("Hand(h)"), (h,))
        assert not omq.evaluate(make_instance("Arm(h)"), (h,))

    def test_certain_answers(self):
        omq = OMQ(HAND, parse_cq("q(x) <- hasFinger(x,y)"))
        D = make_instance("Hand(h)", "Hand(g)", "Arm(a)")
        assert omq.certain_answers(D) == {(h,), (Const("g"),)}

    def test_engine_cached(self):
        omq = OMQ(HAND, parse_cq("q(x) <- Hand(x)"))
        assert omq.engine() is omq.engine()

    def test_ucq_omq(self):
        omq = OMQ(HAND, parse_ucq("q(x) <- Thumb(x) ; q(x) <- Hand(x)"))
        assert omq.evaluate(make_instance("Hand(h)"), (h,))

    def test_backend_selection(self):
        omq = OMQ(HAND, parse_cq("q(x) <- Hand(x)"), backend="sat")
        assert omq.evaluate(make_instance("Hand(h)"), (h,))


class TestTheorem2QueryLanguageInvariance:
    """Theorem 2/4: materializability and evaluation behaviour do not
    depend on the query language (rAQ vs CQ vs UCQ) for uGF ontologies."""

    def test_certainty_closed_under_ucq_union_for_horn(self):
        D = make_instance("Hand(h)")
        q_cq = parse_cq("q(x) <- hasFinger(x,y) & Thumb(y)")
        q_ucq = UCQ((q_cq, parse_cq("q(x) <- Elephant(x)")))
        r1 = certain_answer(HAND, D, q_cq, (h,))
        r2 = certain_answer(HAND, D, q_ucq, (h,))
        assert r1.holds == r2.holds

    def test_horn_materialization_answers_all_query_types(self):
        from repro.semantics.chase import chase
        model = chase(HAND, make_instance("Hand(h)")).universal_model()
        for q_text in ("q(x) <- hasFinger(x,y)",
                       "q(x) <- hasFinger(x,y) & Thumb(y)",
                       "q() <- Thumb(y)"):
            q = parse_cq(q_text)
            answers_model = q.answers(model)
            # every model answer over dom(D) must be certain and vice versa
            for answer in answers_model:
                if all(e in (h,) for e in answer):
                    assert certain_answer(HAND, make_instance("Hand(h)"),
                                          q, answer).holds


class TestConsistencyEdgeCases:
    def test_inconsistent_instance_all_answers_certain(self):
        O = ontology("forall x (x = x -> (A(x) -> ~B(x)))")
        D = make_instance("A(a)", "B(a)")
        q = parse_cq("q(x) <- Nonexistent(x)")
        assert certain_answer(O, D, q, (a,)).holds

    def test_empty_ontology(self):
        O = ontology("")
        D = make_instance("A(a)")
        assert certain_answer(O, D, parse_cq("q(x) <- A(x)"), (a,)).holds
        assert not certain_answer(O, D, parse_cq("q(x) <- B(x)"), (a,)).holds

    def test_functionality_only_ontology(self):
        from repro.logic.ontology import Ontology
        O = Ontology([], functional=["F"])
        consistent = make_instance("F(a,b)")
        clash = make_instance("F(a,b)", "F(a,c)")
        q = parse_cq("q() <- Zzz(x)")
        assert not certain_answer(O, consistent, q).holds
        assert certain_answer(O, clash, q).holds


class TestDLPipeline:
    """DL text -> translation -> OMQ evaluation, end to end."""

    def test_full_pipeline(self):
        tbox = parse_dl_ontology(
            "Professor sub some teaches Course\n"
            "teaches subr involvedIn\n"
            "Course sub not Person")
        onto = dl_to_ontology(tbox)
        omq = OMQ(onto, parse_cq("q(x) <- involvedIn(x,y)"))
        D = make_instance("Professor(p)")
        assert omq.evaluate(D, (Const("p"),))

    def test_inverse_role_reasoning(self):
        tbox = parse_dl_ontology("Child sub some hasParent- top")
        # hasParent-(x,y) = hasParent(y,x): each child is someone's parent?!
        onto = dl_to_ontology(tbox)
        omq = OMQ(onto, parse_cq("q(x) <- hasParent(y,x)"))
        assert omq.evaluate(make_instance("Child(c)"), (Const("c"),))

    def test_counting_pipeline(self):
        tbox = parse_dl_ontology("Hand sub >= 5 hasFinger top")
        onto = dl_to_ontology(tbox)
        omq = OMQ(onto, parse_cq("q(x) <- hasFinger(x,y)"))
        assert omq.evaluate(make_instance("Hand(h)"), (h,))

    def test_union_hand_example_full(self):
        """The paper's opening example end to end: O1, O2 PTIME-ish alone,
        the union not materializable."""
        o1 = dl_to_ontology(parse_dl_ontology("Hand sub == 2 hasFinger top"))
        o2 = dl_to_ontology(parse_dl_ontology("Hand sub some hasFinger Thumb"))
        assert check_materializability(o1, max_elems=1, max_facts=1).status \
            is not MatStatus.NOT_MATERIALIZABLE
        assert check_materializability(o2).status is MatStatus.MATERIALIZABLE
        union = o1.union(o2, name="O1+O2")
        witness_instance = make_instance(
            "Hand(h)", "hasFinger(h,f1)", "hasFinger(h,f2)")
        report = check_materializability(
            union, max_elems=0, max_facts=0,
            extra_instances=[witness_instance])
        assert report.status is MatStatus.NOT_MATERIALIZABLE
