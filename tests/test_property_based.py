"""Property-based tests (hypothesis) on the core data structures."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.datalog import goal_answers, parse_program
from repro.guarded.decomposition import gyo_acyclic
from repro.guarded.unravel import unravel
from repro.logic.homomorphism import find_homomorphism, has_homomorphism
from repro.logic.instance import Interpretation, disjoint_union, make_instance
from repro.logic.model_check import evaluate
from repro.logic.syntax import And, Atom, Const, Not, Or, Var, nnf
from repro.queries.cq import CQ
from repro.semantics.cdcl import solve_cnf

# -- strategies ----------------------------------------------------------------

elements = st.sampled_from([Const(f"e{i}") for i in range(4)])
unary_preds = st.sampled_from(["A", "B", "C"])
binary_preds = st.sampled_from(["R", "S"])

unary_facts = st.builds(lambda p, a: Atom(p, (a,)), unary_preds, elements)
binary_facts = st.builds(lambda p, a, b: Atom(p, (a, b)),
                         binary_preds, elements, elements)
facts = st.one_of(unary_facts, binary_facts)
instances = st.lists(facts, min_size=1, max_size=8).map(Interpretation)

variables = st.sampled_from([Var(f"x{i}") for i in range(3)])


@st.composite
def ground_formulas(draw, depth=2):
    """Random propositional combinations of ground atoms."""
    if depth == 0:
        return draw(facts)
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return draw(facts)
    if kind == 1:
        return Not(draw(ground_formulas(depth=depth - 1)))
    left = draw(ground_formulas(depth=depth - 1))
    right = draw(ground_formulas(depth=depth - 1))
    return And.of(left, right) if kind == 2 else Or.of(left, right)


# -- properties ----------------------------------------------------------------


class TestInterpretationProperties:
    @given(instances)
    def test_dom_is_active(self, inst):
        dom = inst.dom()
        for fact in inst:
            assert set(fact.args) <= dom

    @given(instances)
    def test_copy_equals_original(self, inst):
        assert inst.copy() == inst

    @given(instances, instances)
    def test_union_is_superset(self, a, b):
        u = a.union(b)
        for fact in a:
            assert fact in u
        for fact in b:
            assert fact in u

    @given(st.lists(instances, min_size=1, max_size=3))
    def test_disjoint_union_size(self, parts):
        du = disjoint_union(parts)
        assert len(du) <= sum(len(p) for p in parts)
        assert len(du.dom()) == sum(len(p.dom()) for p in parts)

    @given(instances)
    def test_guarded_sets_cover_facts(self, inst):
        gs = inst.guarded_sets()
        for fact in inst:
            assert frozenset(fact.args) in gs

    @given(instances)
    def test_maximal_guarded_sets_are_maximal(self, inst):
        mgs = inst.maximal_guarded_sets()
        for g in mgs:
            assert not any(g < h for h in mgs)


class TestHomomorphismProperties:
    @given(instances)
    def test_identity_homomorphism(self, inst):
        assert has_homomorphism(inst, inst)

    @given(instances, instances)
    def test_homomorphism_into_union(self, a, b):
        # a maps into a ∪ b via the identity
        assert has_homomorphism(a, a.union(b))

    @given(instances, instances, instances)
    @settings(max_examples=25, deadline=None)
    def test_composition(self, a, b, c):
        h1 = find_homomorphism(a, b)
        h2 = find_homomorphism(b, c)
        if h1 is not None and h2 is not None:
            assert has_homomorphism(a, c)


class TestNNFProperties:
    @given(ground_formulas(), instances)
    @settings(max_examples=60, deadline=None)
    def test_nnf_preserves_semantics(self, phi, inst):
        assert evaluate(phi, inst) == evaluate(nnf(phi), inst)

    @given(ground_formulas(), instances)
    @settings(max_examples=60, deadline=None)
    def test_double_negation_semantics(self, phi, inst):
        assert evaluate(phi, inst) == evaluate(nnf(Not(Not(phi))), inst)


class TestCQProperties:
    @given(instances)
    def test_atom_query_answers_are_facts(self, inst):
        for pred, arity in inst.sig().items():
            variables = tuple(Var(f"v{i}") for i in range(arity))
            q = CQ(variables, [Atom(pred, variables)])
            assert q.answers(inst) == set(inst.tuples(pred))

    @given(instances, instances)
    @settings(max_examples=40, deadline=None)
    def test_query_monotone_under_extension(self, a, b):
        u = a.union(b)
        for pred, arity in a.sig().items():
            variables = tuple(Var(f"v{i}") for i in range(arity))
            q = CQ(variables, [Atom(pred, variables)])
            assert q.answers(a) <= q.answers(u)


class TestDatalogProperties:
    TC = parse_program(
        "T(x,y) <- R(x,y)\nT(x,z) <- R(x,y) & T(y,z)\ngoal(x,y) <- T(x,y)")

    @given(instances)
    @settings(max_examples=30, deadline=None)
    def test_transitive_closure_contains_base(self, inst):
        answers = goal_answers(self.TC, inst)
        assert set(inst.tuples("R")) <= answers

    @given(instances)
    @settings(max_examples=30, deadline=None)
    def test_transitive_closure_is_transitive(self, inst):
        answers = goal_answers(self.TC, inst)
        for (a, b) in answers:
            for (c, d) in answers:
                if b == c:
                    assert (a, d) in answers

    @given(instances)
    @settings(max_examples=20, deadline=None)
    def test_naive_semi_naive_agree(self, inst):
        assert goal_answers(self.TC, inst, semi_naive=True) == \
            goal_answers(self.TC, inst, semi_naive=False)


class TestUnravellingProperties:
    @given(instances)
    @settings(max_examples=25, deadline=None)
    def test_projection_is_homomorphism(self, inst):
        try:
            unr = unravel(inst, depth=2)
        except RuntimeError:
            return  # node cap hit on a dense instance
        proj = unr.projection()
        for fact in unr.interpretation:
            image = Atom(fact.pred, tuple(proj[a] for a in fact.args))
            assert image in inst

    @given(instances)
    @settings(max_examples=25, deadline=None)
    def test_root_bags_are_isomorphic_copies(self, inst):
        try:
            unr = unravel(inst, depth=1)
        except RuntimeError:
            return
        for g in inst.maximal_guarded_sets():
            bag = unr.root_bag(g)
            assert set(bag) == set(g)


class TestGYOProperties:
    """Note: alpha-acyclicity is NOT hereditary (removing a hyperedge can
    create a cycle — e.g. {ab, ac, bc, abc} minus abc), so the properties
    below are the ones that actually hold."""

    @given(st.lists(
        st.frozensets(st.sampled_from("abcdef"), min_size=1, max_size=3),
        max_size=6))
    def test_covering_edge_forces_acyclicity(self, edges):
        # a hyperedge containing every vertex absorbs all others
        vertices = frozenset().union(*edges) if edges else frozenset("a")
        assert gyo_acyclic(edges + [vertices])

    @given(st.lists(
        st.frozensets(st.sampled_from("abcdef"), min_size=1, max_size=3),
        max_size=5))
    def test_disjoint_copies_stay_acyclic(self, edges):
        # acyclicity is preserved under disjoint unions of hypergraphs
        if gyo_acyclic(edges):
            renamed = [frozenset(v.upper() for v in e) for e in edges]
            assert gyo_acyclic(edges + renamed)


class TestCDCLProperties:
    @given(st.lists(
        st.lists(st.integers(-5, 5).filter(lambda x: x != 0),
                 min_size=1, max_size=4),
        min_size=1, max_size=12))
    @settings(max_examples=80, deadline=None)
    def test_model_satisfies_clauses(self, clauses):
        model = solve_cnf(5, clauses)
        if model is not None:
            for clause in clauses:
                assert any(
                    model[abs(l)] == (l > 0) for l in clause
                )

    @given(st.lists(
        st.lists(st.integers(-4, 4).filter(lambda x: x != 0),
                 min_size=1, max_size=3),
        min_size=1, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_brute_force(self, clauses):
        import itertools
        model = solve_cnf(4, clauses)
        brute = any(
            all(any((assign[abs(l) - 1] == (l > 0)) for l in clause)
                for clause in clauses)
            for assign in itertools.product([False, True], repeat=4)
        )
        assert (model is not None) == brute
