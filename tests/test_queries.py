"""Unit tests for CQs, UCQs and rooted acyclic queries."""

import pytest

from repro.logic.instance import make_instance
from repro.logic.syntax import Const, Var
from repro.queries.cq import CQ, UCQ, QueryError, parse_cq, parse_ucq

a, b, c = Const("a"), Const("b"), Const("c")


class TestParsing:
    def test_parse_simple(self):
        q = parse_cq("q(x) <- R(x, y) & A(y)")
        assert q.arity == 1
        assert len(q.atoms) == 2

    def test_parse_boolean(self):
        q = parse_cq("q() <- R(x, y)")
        assert q.is_boolean()

    def test_answer_var_must_occur(self):
        with pytest.raises(QueryError):
            parse_cq("q(z) <- R(x, y)")

    def test_parse_ucq(self):
        q = parse_ucq("q(x) <- A(x) ; q(x) <- B(x)")
        assert len(q.disjuncts) == 2

    def test_ucq_arity_mismatch(self):
        with pytest.raises(QueryError):
            parse_ucq("q(x) <- A(x) ; q() <- B(x)")


class TestEvaluation:
    def test_answers(self):
        q = parse_cq("q(x) <- R(x, y) & A(y)")
        D = make_instance("R(a,b)", "A(b)", "R(c,a)")
        assert q.answers(D) == {(a,)}

    def test_holds_with_binding(self):
        q = parse_cq("q(x) <- R(x, y)")
        D = make_instance("R(a,b)")
        assert q.holds(D, (a,))
        assert not q.holds(D, (b,))

    def test_holds_arity_check(self):
        q = parse_cq("q(x) <- R(x, y)")
        with pytest.raises(QueryError):
            q.holds(make_instance("R(a,b)"), (a, b))

    def test_boolean_query(self):
        q = parse_cq("q() <- R(x, x)")
        assert q.holds(make_instance("R(a,a)"))
        assert not q.holds(make_instance("R(a,b)"))

    def test_ucq_answers_union(self):
        q = parse_ucq("q(x) <- A(x) ; q(x) <- B(x)")
        D = make_instance("A(a)", "B(b)")
        assert q.answers(D) == {(a,), (b,)}

    def test_cycle_query_on_triangle(self):
        q = parse_cq("q() <- R(x,y) & R(y,z) & R(z,x)")
        triangle = make_instance("R(a,b)", "R(b,c)", "R(c,a)")
        assert q.holds(triangle)
        chain = make_instance("R(a,b)", "R(b,c)")
        assert not q.holds(chain)


class TestStructure:
    def test_canonical_database(self):
        q = parse_cq("q(x) <- R(x, y)")
        db, mapping = q.canonical_database()
        assert len(db) == 1
        assert set(mapping) == {Var("x"), Var("y")}

    def test_connectedness(self):
        assert parse_cq("q(x) <- R(x,y) & S(y,z)").is_connected()
        assert not parse_cq("q(x) <- R(x,y) & S(u,v)").is_connected()

    def test_rename_apart(self):
        q = parse_cq("q(x) <- R(x, y)")
        q2 = q.rename_apart([Var("y")])
        assert Var("y") not in q2.variables()
        assert q2.answer_vars == (Var("x"),)


class TestRootedAcyclic:
    def test_example_4_cycle_not_raq(self):
        """Example 4: the R-triangle query is not an rAQ."""
        q = parse_cq("q(x) <- R(x,y) & R(y,z) & R(z,x)")
        assert not q.is_rooted_acyclic()

    def test_example_4_with_ternary_guard_is_raq(self):
        """Adding Q(x,y,z) makes the triangle guarded, hence an rAQ
        (root bag {x} with the guarded triangle hanging below it)."""
        q = parse_cq("q(x) <- R(x,y) & R(y,z) & R(z,x) & Q(x,y,z)")
        assert q.is_rooted_acyclic()
        q2 = parse_cq("q(x,y,z) <- R(x,y) & R(y,z) & R(z,x) & Q(x,y,z)")
        assert q2.is_rooted_acyclic()

    def test_path_query_is_raq(self):
        q = parse_cq("q(x) <- R(x,y) & R(y,z)")
        assert q.is_rooted_acyclic()

    def test_boolean_never_raq(self):
        q = parse_cq("q() <- R(x,y)")
        assert not q.is_rooted_acyclic()

    def test_answer_vars_must_be_guarded(self):
        # x and z do not co-occur in an atom: answer tuple is unguarded.
        q = parse_cq("q(x,z) <- R(x,y) & R(y,z)")
        assert not q.is_rooted_acyclic()

    def test_tree_query_is_raq(self):
        q = parse_cq("q(x) <- R(x,y) & R(x,z) & A(y) & B(z)")
        assert q.is_rooted_acyclic()

    def test_to_formula_roundtrip_evaluation(self):
        from repro.logic.model_check import evaluate
        q = parse_cq("q(x) <- R(x,y) & A(y)")
        D = make_instance("R(a,b)", "A(b)")
        phi = q.to_formula()
        assert evaluate(phi, D, {Var("x"): a})
