"""Tests for the squid-style CQ decomposition."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.logic.instance import Interpretation, make_instance
from repro.logic.syntax import Atom, Const, Var
from repro.queries.cq import CQ, parse_cq
from repro.queries.split import component_split, evaluate_split, tentacle_split


class TestComponentSplit:
    def test_connected_query_single_component(self):
        q = parse_cq("q(x) <- R(x,y) & S(y,z)")
        split = component_split(q)
        assert len(split.answer_components) == 1
        assert not split.boolean_components

    def test_detached_boolean_component(self):
        q = parse_cq("q(x) <- A(x) & E(u,v)")
        split = component_split(q)
        assert len(split.answer_components) == 1
        assert len(split.boolean_components) == 1
        assert split.boolean_components[0].is_boolean()

    def test_two_answer_components(self):
        q = parse_cq("q(x,y) <- A(x) & B(y)")
        split = component_split(q)
        assert len(split.answer_components) == 2

    def test_atoms_partitioned(self):
        q = parse_cq("q(x) <- R(x,y) & E(u,v) & F(w)")
        split = component_split(q)
        total = sum(len(c.atoms) for c in split.components)
        assert total == len(q.atoms)


class TestTentacleSplit:
    def test_pure_tentacle_query(self):
        q = parse_cq("q(x) <- R(x,y) & A(y)")
        split = tentacle_split(q)
        assert split.core is None
        assert len(split.tentacles) == 1
        assert split.tentacles[0].is_rooted_acyclic()

    def test_cycle_stays_in_core(self):
        q = parse_cq("q(x) <- R(x,y) & R(y,z) & R(z,x)")
        split = tentacle_split(q)
        assert split.core is not None
        assert not split.tentacles

    def test_two_rooted_tentacles(self):
        q = parse_cq("q(x,y) <- E(x,y) & R(x,u) & S(y,v)")
        split = tentacle_split(q)
        # E(x,y) touches both answer variables: core; R/S hang off x and y
        assert split.core is not None
        assert {a.pred for a in split.core.atoms} == {"E"}
        assert len(split.tentacles) == 2

    def test_tentacles_are_raqs(self):
        q = parse_cq("q(x) <- R(x,y) & S(y,z) & A(z) & R(x,u)")
        split = tentacle_split(q)
        for tentacle in split.tentacles:
            assert tentacle.is_rooted_acyclic()


class TestEvaluateSplit:
    def test_agrees_on_example(self):
        q = parse_cq("q(x) <- A(x) & E(u,v)")
        D1 = make_instance("A(a)", "E(p,q)")
        D2 = make_instance("A(a)")
        a = Const("a")
        assert evaluate_split(q, D1, (a,)) == q.holds(D1, (a,))
        assert evaluate_split(q, D2, (a,)) == q.holds(D2, (a,))

    # property-based agreement with direct evaluation
    elements = st.sampled_from([Const(f"e{i}") for i in range(3)])
    facts = st.one_of(
        st.builds(lambda p, x: Atom(p, (x,)), st.sampled_from(["A", "B"]),
                  elements),
        st.builds(lambda p, x, y: Atom(p, (x, y)),
                  st.sampled_from(["R", "S"]), elements, elements),
    )
    instances = st.lists(facts, min_size=1, max_size=7).map(Interpretation)

    @given(instances)
    @settings(max_examples=40, deadline=None)
    def test_property_agreement(self, interp):
        x, y, u, v = Var("x"), Var("y"), Var("u"), Var("v")
        q = CQ((x,), [Atom("R", (x, y)), Atom("S", (u, v)), Atom("A", (x,))])
        for elem in interp.dom():
            assert evaluate_split(q, interp, (elem,)) == q.holds(interp, (elem,))
