"""Unit coverage for repro.resilience: retry policies, the crash-safe
journal, the retrying supervisor and the self-healing pool facade."""

import json

import pytest

from repro.resilience import (
    AttemptOutcome, Journal, JournalError, PoolSupervisor, RetryPolicy,
    Supervisor, Task, replay_journal,
)
from repro.runtime import Budget, FaultPlan, FaultSpec


class TestRetryPolicy:
    def test_defaults_validate(self):
        p = RetryPolicy()
        assert p.max_attempts == 3 and p.max_crashes == 3

    def test_invalid_fields_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(max_crashes=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=-1)
        with pytest.raises(ValueError):
            RetryPolicy(escalation=0)

    def test_none_policy_never_retries_never_quarantines(self):
        p = RetryPolicy.none()
        assert p.max_attempts == 1
        assert p.max_crashes > 10 ** 6  # quarantine can never fire

    def test_first_attempt_has_no_delay(self):
        assert RetryPolicy().delay(1, job_index=7) == 0.0

    def test_delay_is_exponential_and_capped(self):
        p = RetryPolicy(backoff=0.1, backoff_factor=2.0, max_backoff=0.3,
                        jitter=0.0)
        assert p.delay(2) == pytest.approx(0.1)
        assert p.delay(3) == pytest.approx(0.2)
        assert p.delay(4) == pytest.approx(0.3)  # capped
        assert p.delay(9) == pytest.approx(0.3)

    def test_jitter_is_deterministic_and_bounded(self):
        p = RetryPolicy(backoff=0.1, jitter=0.5, seed=42)
        d1 = p.delay(2, job_index=3)
        assert d1 == p.delay(2, job_index=3)  # pure function of inputs
        assert 0.05 <= d1 <= 0.15
        # Different jobs / attempts / seeds decorrelate.
        assert d1 != p.delay(2, job_index=4)
        assert d1 != RetryPolicy(backoff=0.1, jitter=0.5, seed=43).delay(
            2, job_index=3)

    def test_escalation_schedule(self):
        p = RetryPolicy(escalation=3.0)
        assert p.escalation_for(1) == 1.0
        assert p.escalation_for(2) == 3.0
        assert p.escalation_for(3) == 9.0

    def test_budget_for_returns_fresh_escalated_allocation(self):
        base = Budget(chase_steps=10, escalate=False)
        p = RetryPolicy(escalation=2.0)
        assert p.budget_for(None, 2) is None
        assert p.budget_for(base, 1) is base
        retry_budget = p.budget_for(base, 2)
        assert retry_budget is not base
        assert retry_budget.max_chase_steps == 20

    def test_from_spec_round_trip(self):
        p = RetryPolicy.from_spec(
            "attempts=5, backoff=0.2, factor=3, max_backoff=9, "
            "jitter=0.25, escalation=4, crashes=2, seed=7")
        assert p.max_attempts == 5 and p.backoff == 0.2
        assert p.backoff_factor == 3.0 and p.max_backoff == 9.0
        assert p.jitter == 0.25 and p.escalation == 4.0
        assert p.max_crashes == 2 and p.seed == 7

    def test_from_spec_rejects_garbage(self):
        with pytest.raises(ValueError, match="key=value"):
            RetryPolicy.from_spec("attempts")
        with pytest.raises(ValueError, match="unknown retry key"):
            RetryPolicy.from_spec("lives=9")
        with pytest.raises(ValueError, match="bad number"):
            RetryPolicy.from_spec("attempts=three")


class TestJournal:
    def test_append_replay_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path) as j:
            j.append({"kind": "header", "n": 2})
            j.append({"kind": "result", "key": "a"})
        replay = replay_journal(path)
        assert [r["kind"] for r in replay.records] == ["header", "result"]
        assert not replay.corrupt_tail
        assert replay.valid_bytes == path.stat().st_size

    def test_missing_file_is_empty_replay(self, tmp_path):
        replay = replay_journal(tmp_path / "never.jsonl")
        assert replay.records == [] and not replay.corrupt_tail

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path) as j:
            j.append({"ok": 1})
        # Simulate a crash mid-append: a partial second line, no newline.
        with open(path, "ab") as fh:
            fh.write(b'{"ok": 2, "tru')
        replay = replay_journal(path)
        assert [r["ok"] for r in replay.records] == [1]
        assert replay.corrupt_tail

    def test_unterminated_but_parseable_tail_is_torn(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_bytes(b'{"ok": 1}\n{"ok": 2}')  # no final newline
        replay = replay_journal(path)
        assert [r["ok"] for r in replay.records] == [1]
        assert replay.corrupt_tail

    def test_midfile_corruption_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_bytes(b'{"ok": 1}\ngarbage!!\n{"ok": 3}\n')
        with pytest.raises(JournalError, match="corrupt journal line"):
            replay_journal(path)

    def test_resume_truncates_torn_tail_before_appending(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path) as j:
            j.append({"ok": 1})
        with open(path, "ab") as fh:
            fh.write(b'{"half')
        with Journal(path, replay=True) as j:
            assert [r["ok"] for r in j.replayed] == [1]
            assert j.corrupt_tail_dropped
            j.append({"ok": 2})
        replay = replay_journal(path)
        assert [r["ok"] for r in replay.records] == [1, 2]
        assert not replay.corrupt_tail  # the torn bytes are gone for good

    def test_fresh_journal_truncates_previous_contents(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"stale": true}\n')
        with Journal(path) as j:
            j.append({"ok": 1})
        assert [r["ok"] for r in replay_journal(path).records] == [1]

    def test_stats(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path) as j:
            j.append({"a": 1})
        with Journal(path, replay=True) as j:
            j.append({"b": 2})
            s = j.stats()
        assert s["appended"] == 1 and s["replayed"] == 1
        assert s["corrupt_tail_dropped"] is False

    def test_records_are_single_sorted_lines(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path) as j:
            j.append({"b": 2, "a": 1})
        header, line = path.read_bytes().splitlines()
        assert header == b'{"kind":"journal-header","schema":1}'
        assert line == b'{"a":1,"b":2}'
        assert json.loads(line)

    def test_fresh_journal_is_versioned_and_header_is_invisible(
            self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path) as j:
            j.append({"a": 1})
            assert j.records_written == 1  # the header never counts
        replay = replay_journal(path)
        assert replay.versioned
        # The header is consumed by replay, never surfaced as a record.
        assert replay.records == [{"a": 1}]
        with Journal(path, replay=True) as j:
            assert j.replayed == [{"a": 1}]

    def test_replay_rejects_newer_schema_version(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text('{"kind":"journal-header","schema":999}\n'
                        '{"a":1}\n')
        with pytest.raises(JournalError,
                           match="schema version 999.*not.*supported"):
            replay_journal(path)
        path.write_text('{"kind":"journal-header"}\n')  # missing entirely
        with pytest.raises(JournalError, match="schema version None"):
            replay_journal(path)

    def test_legacy_headerless_journal_still_replays(self, tmp_path):
        path = tmp_path / "legacy.jsonl"
        path.write_text('{"a":1}\n{"b":2}\n')
        replay = replay_journal(path)
        assert not replay.versioned
        assert replay.records == [{"a": 1}, {"b": 2}]
        # Resuming never injects a header mid-file: the header must be
        # the first line, so the legacy file is appended to as-is.
        with Journal(path, replay=True) as j:
            assert len(j.replayed) == 2
            j.append({"c": 3})
        assert not replay_journal(path).versioned
        assert len(replay_journal(path).records) == 3

    def test_header_record_after_line_one_is_an_ordinary_record(
            self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path) as j:
            j.append({"kind": "journal-header", "schema": 1})
        # Only offset 0 is the file-format header; a caller record that
        # merely looks like one replays normally.
        assert replay_journal(path).records == [
            {"kind": "journal-header", "schema": 1}]


def wave_script(*outcomes_by_attempt):
    """An execute_wave whose attempt-k outcome for a key is scripted:
    outcomes_by_attempt[k-1] maps key -> (status, reason)."""
    def execute(tasks):
        outs = []
        for task in tasks:
            status, reason = outcomes_by_attempt[task.attempt - 1][task.key]
            outs.append(AttemptOutcome(task, status, result=f"r{task.key}",
                                       reason=reason))
        return outs
    return execute


class TestSupervisor:
    def test_ok_first_attempt_is_done(self):
        sup = Supervisor(RetryPolicy(), wave_script({"a": ("ok", "")}),
                         sleep=lambda s: None)
        finals = sup.run(["a"])
        assert finals["a"].disposition == "done"
        assert len(finals["a"].attempts) == 1
        assert sup.stats() == {"retries": 0, "crashes": 0, "quarantined": 0}

    def test_error_is_terminal_not_retried(self):
        sup = Supervisor(RetryPolicy(), wave_script({"a": ("error", "bad")}),
                         sleep=lambda s: None)
        finals = sup.run(["a"])
        assert finals["a"].disposition == "done"
        assert sup.retries == 0

    def test_unknown_retries_then_succeeds(self):
        sup = Supervisor(
            RetryPolicy(max_attempts=3, backoff=0.0),
            wave_script({"a": ("unknown", "starved")}, {"a": ("ok", "")}),
            sleep=lambda s: None)
        finals = sup.run(["a"])
        assert finals["a"].disposition == "done"
        assert [a.status for a in finals["a"].attempts] == ["unknown", "ok"]
        assert finals["a"].attempts[1].escalation == 2.0  # default policy
        assert sup.retries == 1

    def test_unknown_exhausts_after_max_attempts(self):
        script = [{"a": ("unknown", "starved")}] * 2
        sup = Supervisor(RetryPolicy(max_attempts=2, backoff=0.0),
                         wave_script(*script), sleep=lambda s: None)
        finals = sup.run(["a"])
        assert finals["a"].disposition == "exhausted"
        assert len(finals["a"].attempts) == 2

    def test_crashes_reach_quarantine(self):
        script = [{"a": ("crash", "sig")}] * 3
        sup = Supervisor(
            RetryPolicy(max_attempts=5, max_crashes=3, backoff=0.0),
            wave_script(*script), sleep=lambda s: None)
        finals = sup.run(["a"])
        assert finals["a"].disposition == "quarantined"
        assert sup.crashes == 3 and sup.quarantined == 1

    def test_crash_without_quarantine_is_crashed(self):
        script = [{"a": ("crash", "sig")}] * 2
        sup = Supervisor(
            RetryPolicy(max_attempts=2, max_crashes=5, backoff=0.0),
            wave_script(*script), sleep=lambda s: None)
        assert sup.run(["a"])["a"].disposition == "crashed"

    def test_no_retry_policy_crash_is_crashed_not_quarantined(self):
        sup = Supervisor(None, wave_script({"a": ("crash", "sig")}),
                         sleep=lambda s: None)
        assert sup.run(["a"])["a"].disposition == "crashed"

    def test_backoff_sleeps_once_per_wave_with_max_delay(self):
        slept = []
        policy = RetryPolicy(max_attempts=2, backoff=0.05, jitter=0.0)
        script = [{"a": ("unknown", ""), "b": ("unknown", "")},
                  {"a": ("ok", ""), "b": ("ok", "")}]
        sup = Supervisor(policy, wave_script(*script), sleep=slept.append)
        sup.run(["a", "b"])
        assert slept == [pytest.approx(0.05)]  # one pause for the wave

    def test_on_final_fires_per_job_as_decided(self):
        order = []
        script = [{"a": ("ok", ""), "b": ("unknown", "")},
                  {"b": ("ok", "")}]
        sup = Supervisor(
            RetryPolicy(max_attempts=2, backoff=0.0), wave_script(*script),
            on_final=lambda key, final: order.append(
                (key, final.disposition)),
            sleep=lambda s: None)
        sup.run(["a", "b"])
        assert order == [("a", "done"), ("b", "done")]

    def test_mixed_batch_dispositions(self):
        script = [{"a": ("ok", ""), "b": ("crash", "x"), "c": ("error", "e")},
                  {"b": ("crash", "x")}]
        sup = Supervisor(
            RetryPolicy(max_attempts=3, max_crashes=2, backoff=0.0),
            wave_script(*script), sleep=lambda s: None)
        finals = sup.run(["a", "b", "c"])
        assert finals["a"].disposition == "done"
        assert finals["b"].disposition == "quarantined"
        assert finals["c"].disposition == "done"


def _double(payload):
    return payload * 2


def _raise_on_odd(payload):
    if payload % 2:
        raise ValueError(f"odd {payload}")
    return payload * 2


class TestPoolSupervisor:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            PoolSupervisor(_double, 0)

    def test_runs_a_wave_through_real_processes(self):
        with PoolSupervisor(_double, 2) as pool:
            out = dict((k, (kind, v))
                       for k, kind, v in pool.run_wave([(0, 3), (1, 4)]))
        assert out == {0: ("result", 6), 1: ("result", 8)}
        assert pool.stats() == {"pool_deaths": 0, "rebuilds": 0,
                                "cautious": False, "degraded": False}

    def test_worker_exception_is_a_crash_not_a_pool_death(self):
        with PoolSupervisor(_raise_on_odd, 2) as pool:
            out = {k: (kind, v)
                   for k, kind, v in pool.run_wave([(0, 2), (1, 3)])}
        assert out[0] == ("result", 4)
        kind, exc = out[1]
        assert kind == "crash" and isinstance(exc, ValueError)
        assert pool.pool_deaths == 0 and not pool.cautious

    def test_degraded_mode_runs_in_driver(self):
        pool = PoolSupervisor(_raise_on_odd, 2, max_pool_deaths=1)
        pool.degraded = True  # as if the pool kept dying
        out = {k: (kind, type(v).__name__ if kind == "crash" else v)
               for k, kind, v in pool.run_wave([(0, 2), (1, 3)])}
        assert out == {0: ("result", 4), 1: ("crash", "ValueError")}
        assert pool._pool is None  # never built one

    def test_consecutive_deaths_reset_on_success(self):
        pool = PoolSupervisor(_double, 1, max_pool_deaths=2)
        pool._pool_died()
        assert pool.cautious and not pool.degraded
        assert pool.consecutive_deaths == 1
        out = pool.run_wave([(0, 5)])  # cautious single-job dispatch
        assert out == [(0, "result", 10)]
        assert pool.consecutive_deaths == 0
        pool.close()

    def test_death_threshold_degrades(self):
        pool = PoolSupervisor(_double, 1, max_pool_deaths=2)
        pool._pool_died()
        pool._pool_died()
        assert pool.degraded
        assert pool.stats()["pool_deaths"] == 2
