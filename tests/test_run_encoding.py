"""Tests for the Lemma-4 run-fitting OMQ encoding."""

import pytest

from repro.tiling.run_encoding import (
    RunFittingOMQ, encode_partial_run, lemma4_dl, successor_triples,
)
from repro.tm import BLANK, PartialRun, TM, Transition, blank_partial_run


def flip_machine() -> TM:
    return TM(
        states={"S", "A"},
        alphabet={"0", "1"},
        transitions=[
            Transition("S", "0", "S", "1", "R"),
            Transition("S", "1", "S", "0", "R"),
            Transition("S", BLANK, "A", BLANK, "R"),
        ],
        start="S",
        accept="A",
    )


class TestConstruction:
    def test_ontology_builds(self):
        tbox = lemma4_dl(flip_machine())
        assert len(tbox.axioms) > len(flip_machine().states)
        assert tbox.depth() <= 2

    def test_successor_triples_right_move(self):
        tm = flip_machine()
        triples = successor_triples(tm, "0", "S", "1")
        # reading 1, the machine writes 0 and moves right
        assert ("0", "0", "S") in triples

    def test_successor_triples_accepting(self):
        tm = flip_machine()
        triples = successor_triples(tm, "0", "S", BLANK)
        assert ("0", BLANK, "A") in triples

    def test_no_moves_no_triples(self):
        tm = flip_machine()
        assert successor_triples(tm, "0", "A", "0") == []

    def test_disjunction_axiom_present(self):
        from repro.dl.concepts import ConceptInclusion, OrC

        tbox = lemma4_dl(flip_machine())
        assert any(
            isinstance(a, ConceptInclusion) and isinstance(a.rhs, OrC)
            and any(getattr(p, "name", "") in ("N1", "N2")
                    for p in getattr(a.rhs, "parts", ()))
            for a in tbox.axioms)


class TestEncoding:
    def test_grid_dimensions(self):
        partial = blank_partial_run(width=4, steps=2)
        grid = encode_partial_run(partial)
        assert len(grid.tuples("X")) == 3 * 3  # (width-1) per row x 3 rows
        assert len(grid.tuples("Y")) == 4 * 2

    def test_presets_two_successors(self):
        partial = PartialRun.from_strings(["S0__", "????"])
        grid = encode_partial_run(partial)
        s_edges = grid.tuples("sym_S")
        assert len(s_edges) == 2  # the marker is positively preset
        zero_edges = grid.tuples("sym_0")
        assert len(zero_edges) == 2

    def test_wildcards_add_nothing(self):
        partial = blank_partial_run(width=3, steps=1)
        grid = encode_partial_run(partial)
        assert all(pred in ("X", "Y") for pred in grid.sig())


class TestLemma4Semantics:
    """certain(q <- N) == coRF(M) on concrete partial runs."""

    def setup_method(self):
        self.omq = RunFittingOMQ(flip_machine())

    def test_fittable_run_not_certain(self):
        partial = blank_partial_run(width=5, steps=3)
        assert not self.omq.certain_n(partial)

    def test_unfittable_run_certain(self):
        partial = PartialRun.from_strings(["S1___", "1S___", "?????", "?????"])
        assert self.omq.certain_n(partial)

    def test_wrong_final_state_certain(self):
        # demand a non-accepting configuration in the last row everywhere
        partial = PartialRun.from_strings(["S0___", "?????", "??S??"])
        assert self.omq.certain_n(partial)
