"""Tests for repro.runtime: budgets, outcomes, escalation ladders, CLI."""

import json

import pytest

from repro.csp import clique_template, encode_template, random_graph_instance
from repro.logic.instance import make_instance
from repro.logic.ontology import ontology
from repro.logic.syntax import Const
from repro.queries.cq import parse_cq
from repro.runtime import (
    Budget, BudgetExceeded, FaultPlan, FaultSpec, Outcome, ResourceExhausted,
    Verdict, chase_rungs, sat_rungs,
)
from repro.semantics.certain import CertainEngine

HAND = ontology(
    "forall x (x = x -> (Hand(x) -> exists y (hasFinger(x,y) & Thumb(y))))")
HAND_QUERY = parse_cq("q(x) <- hasFinger(x,y) & Thumb(y)")


def conp_hard_workload(n: int = 14):
    """A 3-colorability OMQ (Theorem 8 band: coNP-hard) on a circulant graph."""
    template = clique_template(3).with_precoloring()
    enc = encode_template(template, style="eq")
    edges = [(i, (i + 1) % n) for i in range(n)]
    edges += [(i, (i + 5) % n) for i in range(n)]
    graph = random_graph_instance(n, edges)
    return enc.ontology, enc.omq_instance(graph), enc.query


class TestBudget:
    def test_unlimited_budget_never_raises(self):
        b = Budget()
        for _ in range(1000):
            b.tick_chase_step()
            b.tick_conflict()
            b.tick_backtrack("csp_backtracks")
        assert b.spent_chase_steps == 1000
        assert b.usage().conflicts == 1000

    def test_deadline_expiry(self):
        clock = [0.0]
        b = Budget(timeout=1.0, clock=lambda: clock[0])
        b.check_deadline("t")
        clock[0] = 2.0
        with pytest.raises(BudgetExceeded) as err:
            b.check_deadline("t")
        assert err.value.resource == "deadline"
        assert b.remaining() == 0.0

    def test_poll_is_strided(self):
        clock = [0.0]
        b = Budget(timeout=1.0, clock=lambda: clock[0])
        clock[0] = 2.0  # already past the deadline
        for _ in range(Budget.DEADLINE_STRIDE - 1):
            b.poll("t")  # no check yet
        with pytest.raises(BudgetExceeded):
            b.poll("t")

    def test_split_children_start_lazily(self):
        # Serial batch: job k's share must not burn down while jobs
        # 0..k-1 run — each child's deadline anchors at its own first
        # checkpoint, not at split time.
        clock = [0.0]
        parent = Budget(timeout=0.4, clock=lambda: clock[0])
        first, second = parent.split(2)
        assert second.elapsed() == 0.0
        assert second.remaining() == pytest.approx(0.2)
        clock[0] = 0.2  # job 0 consumed its full share...
        second.check_deadline("job 1 start")  # ...job 1 is still alive
        assert second.remaining() == pytest.approx(0.2)
        clock[0] = 0.45  # now job 1 really is out of time
        with pytest.raises(BudgetExceeded):
            second.check_deadline("job 1")

    def test_lazy_child_anchors_on_poll(self):
        clock = [0.0]
        child = Budget(timeout=1.0, clock=lambda: clock[0]).split(1)[0]
        clock[0] = 5.0  # time passes before the child's job starts
        child.poll("t")  # first checkpoint anchors the clock
        assert child.deadline == pytest.approx(6.0)
        assert child.elapsed() == 0.0

    def test_counter_limits(self):
        b = Budget(chase_steps=2, conflicts=3, backtracks=1, nulls=5)
        b.tick_chase_step()
        b.tick_chase_step()
        with pytest.raises(BudgetExceeded) as err:
            b.tick_chase_step()
        assert err.value.resource == "chase_steps"
        with pytest.raises(BudgetExceeded):
            b.tick_nulls(9)
        b.tick_backtrack("rf_backtracks")
        with pytest.raises(BudgetExceeded) as err:
            b.tick_backtrack("rf_backtracks")
        assert err.value.resource == "backtracks"

    def test_from_spec(self):
        b = Budget.from_spec("timeout=0.5, conflicts=100, escalate=0")
        assert b.timeout == 0.5
        assert b.max_conflicts == 100
        assert b.escalate is False
        with pytest.raises(ValueError):
            Budget.from_spec("bogus=3")
        with pytest.raises(ValueError):
            Budget.from_spec("conflicts")
        with pytest.raises(ValueError):
            Budget.from_spec("conflicts=many")

    def test_from_env(self):
        assert Budget.from_env({}) is None
        b = Budget.from_env({"REPRO_TIMEOUT": "2.5"})
        assert b is not None and b.timeout == 2.5
        b = Budget.from_env({"REPRO_BUDGET": "conflicts=7"})
        assert b is not None and b.max_conflicts == 7 and b.timeout is None
        with pytest.raises(ValueError):
            Budget.from_env({"REPRO_TIMEOUT": "soon"})

    def test_usage_snapshot_roundtrip(self):
        b = Budget()
        b.tick_chase_step()
        b.tick_nulls(3)
        d = b.usage().to_dict()
        assert d["chase_steps"] == 1 and d["nulls"] == 3
        assert set(d) == {"elapsed_seconds", "chase_steps", "nulls",
                          "conflicts", "backtracks", "solver_runs"}


class TestEscalationSchedules:
    def test_chase_rungs(self):
        assert chase_rungs(6) == (2, 4, 6)
        assert chase_rungs(8) == (2, 4, 8)
        assert chase_rungs(9) == (2, 4, 8, 9)
        assert chase_rungs(2) == (2,)
        assert chase_rungs(1) == (1,)
        assert chase_rungs(6, escalate=False) == (6,)

    def test_sat_rungs(self):
        assert sat_rungs(3) == (1, 2, 3)
        assert sat_rungs(4) == (1, 2, 4)
        assert sat_rungs(1) == (1,)
        assert sat_rungs(3, escalate=False) == (3,)


class TestOutcome:
    def test_holds_raises_on_unknown(self):
        exc = BudgetExceeded("deadline", "out of time")
        outcome = Outcome.exhausted_outcome(exc)
        assert outcome.exhausted
        with pytest.raises(ResourceExhausted) as err:
            outcome.holds
        assert err.value.resource == "deadline"
        assert err.value.outcome is outcome

    def test_to_dict(self):
        o = Outcome(Verdict.YES, True, "chase", "why")
        d = o.to_dict()
        assert d["verdict"] == "yes" and d["engine"] == "chase"


class TestEngineOutcomes:
    def test_ungoverned_outcome_recorded(self, no_ambient_faults):
        engine = CertainEngine(HAND)
        data = make_instance("Hand(h)")
        assert engine.entails(data, HAND_QUERY, (Const("h"),))
        outcome = engine.last_outcome
        assert outcome is not None
        assert outcome.verdict is Verdict.YES
        assert outcome.engine == "chase"
        assert outcome.fallback is None
        assert outcome.usage is not None and outcome.usage.chase_steps >= 1
        # the classic one-shot bound: a single rung at chase_depth
        assert [a.bound for a in outcome.attempts] == [engine.chase_depth]

    def test_sat_backend_outcome(self):
        # not rule-convertible: forced to the SAT backend
        O = ontology("forall x (x = x -> (A(x) | forall y (R(x,y) -> B(y))))")
        engine = CertainEngine(O)
        assert not engine.uses_chase
        assert not engine.entails(make_instance("A(a)"),
                                  parse_cq("q(x) <- Z(x)"), (Const("a"),))
        outcome = engine.last_outcome
        assert outcome.engine == "sat"
        assert outcome.verdict is Verdict.NO
        assert outcome.definitive  # a concrete countermodel

    def test_sat_yes_is_bound_relative(self):
        O = ontology("forall x (x = x -> (A(x) | forall y (R(x,y) -> B(y))))")
        engine = CertainEngine(O)
        assert engine.entails(make_instance("A(a)"),
                              parse_cq("q(x) <- A(x)"), (Const("a"),))
        assert engine.last_outcome.definitive is False
        assert "nulls" in engine.last_outcome.reason

    def test_consistency_outcome(self, no_ambient_faults):
        engine = CertainEngine(HAND)
        outcome = engine.consistency_outcome(make_instance("Hand(h)"))
        assert outcome.verdict is Verdict.YES
        assert outcome.engine == "chase"
        assert engine.last_outcome is outcome

    def test_ladder_first_rung_wins_on_easy_instance(self, no_ambient_faults):
        engine = CertainEngine(HAND)
        outcome = engine.entails_outcome(
            make_instance("Hand(h)"), HAND_QUERY, (Const("h"),),
            budget=Budget(timeout=30))
        assert outcome.verdict is Verdict.YES
        assert [(a.engine, a.bound) for a in outcome.attempts] == [("chase", 2)]

    def test_explain_carries_outcome_and_witness(self, no_ambient_faults):
        engine = CertainEngine(HAND)
        exp = engine.explain(make_instance("Hand(h)"), HAND_QUERY,
                             (Const("h"),))
        assert exp.holds and exp.witness is not None
        assert exp.outcome is not None and exp.outcome.engine == "chase"


class TestDeadlineOnHardInstance:
    def test_50ms_deadline_returns_unknown(self):
        # Acceptance criterion: a coNP-hard Figure-1 instance under a 50 ms
        # deadline yields UNKNOWN(resource_exhausted) — never a guess.
        onto, data, query = conp_hard_workload()
        engine = CertainEngine(onto)
        outcome = engine.entails_outcome(data, query, (),
                                         budget=Budget(timeout=0.05))
        assert outcome.verdict is Verdict.UNKNOWN
        assert "resource_exhausted" in outcome.reason
        with pytest.raises(ResourceExhausted):
            engine.entails(data, query, (), budget=Budget(timeout=0.05))

    def test_conflict_budget_returns_unknown(self):
        onto, data, query = conp_hard_workload()
        engine = CertainEngine(onto)
        outcome = engine.entails_outcome(data, query, (),
                                         budget=Budget(conflicts=3))
        assert outcome.verdict is Verdict.UNKNOWN
        assert "conflicts" in outcome.reason

    def test_generous_budget_matches_unbudgeted_verdict(self):
        onto, data, query = conp_hard_workload(6)
        engine = CertainEngine(onto)
        expected = engine.entails(data, query, ())
        governed = engine.entails_outcome(data, query, (),
                                          budget=Budget(timeout=120))
        assert governed.verdict is (Verdict.YES if expected else Verdict.NO)


class TestEnvGovernance:
    def test_repro_timeout_env_governs_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIMEOUT", "30")
        engine = CertainEngine(HAND)
        assert engine.entails(make_instance("Hand(h)"), HAND_QUERY,
                              (Const("h"),))
        # env governance switches the escalation ladder on: first rung is 2
        assert engine.last_outcome.attempts[0].bound == 2


@pytest.fixture
def workspace(tmp_path):
    onto = tmp_path / "onto.gf"
    onto.write_text(
        "forall x (x = x -> (Hand(x) -> exists y (hasFinger(x,y) & Thumb(y))))\n")
    data = tmp_path / "data.facts"
    data.write_text("Hand(h)\n")
    return {"onto": str(onto), "data": str(data)}


class TestCli:
    def test_eval_alias(self, workspace, capsys):
        from repro.cli import main
        assert main(["eval", workspace["onto"], workspace["data"],
                     "q() <- Thumb(y)"]) == 0
        assert "certain: True" in capsys.readouterr().out

    def test_evaluate_json_outcome(self, workspace, capsys,
                                   no_ambient_faults):
        from repro.cli import main
        assert main(["evaluate", workspace["onto"], workspace["data"],
                     "q(x) <- hasFinger(x,y) & Thumb(y)",
                     "--format", "json", "--timeout", "30"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["answers"] == [["h"]]
        assert payload["outcome"]["verdict"] == "yes"
        assert payload["outcome"]["engine"] == "chase"
        assert payload["outcome"]["usage"]["chase_steps"] >= 1

    def test_consistent_json_outcome(self, workspace, capsys):
        from repro.cli import main
        assert main(["consistent", workspace["onto"], workspace["data"],
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "yes"

    def test_exit_code_3_on_injected_deadline(self, workspace, capsys,
                                              monkeypatch):
        import repro.runtime.faults as faults
        monkeypatch.setattr(faults, "_cache", None)
        monkeypatch.setenv("REPRO_FAULTS", "deadline:@1")
        from repro.cli import main
        code = main(["evaluate", workspace["onto"], workspace["data"],
                     "q() <- Thumb(y)", "--timeout", "30"])
        assert code == 3
        assert "unknown" in capsys.readouterr().err

    def test_exit_code_3_json(self, workspace, capsys, monkeypatch):
        import repro.runtime.faults as faults
        monkeypatch.setattr(faults, "_cache", None)
        monkeypatch.setenv("REPRO_FAULTS", "deadline:@1")
        from repro.cli import main
        code = main(["evaluate", workspace["onto"], workspace["data"],
                     "q() <- Thumb(y)", "--timeout", "30",
                     "--format", "json"])
        assert code == 3
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "unknown"
        assert "resource_exhausted" in payload["outcome"]["reason"]

    def test_bad_budget_spec_is_input_error(self, workspace, capsys):
        from repro.cli import main
        assert main(["evaluate", workspace["onto"], workspace["data"],
                     "q() <- Thumb(y)", "--budget", "bogus=1"]) == 2
        assert "--budget" in capsys.readouterr().err
