"""Fault-injection coverage: every injectable fault exercised on Horn and
non-Horn ontologies, with the escalation ladder converging to the verdict
the unbudgeted engines give."""

import pytest

from repro.csp import clique_template, random_graph_instance, solve
from repro.logic.instance import make_instance
from repro.logic.ontology import ontology
from repro.logic.syntax import Const
from repro.queries.cq import parse_cq, parse_ucq
from repro.runtime import (
    Budget, BudgetExceeded, FaultPlan, FaultSpec, ResourceExhausted, Verdict,
    parse_faults,
)
from repro.semantics.certain import CertainEngine
from repro.tm import BLANK, TM, Transition, blank_partial_run, fits

HORN = ontology("""
forall x (x = x -> (Hand(x) -> exists y (hasFinger(x,y) & Thumb(y))))
forall x,y (hasFinger(x,y) -> Digit(y))
""")
NON_HORN = ontology("""
forall x (P(x) -> (A(x) | B(x)))
forall x (x = x -> (A(x) -> exists y (R(x,y) & P(y))))
forall x (x = x -> (B(x) -> exists y (S(x,y) & Q(y))))
""")

# (ontology, data, query, answer) tier-1-style fixtures; expected verdicts
# come from the unbudgeted engines at runtime, not from hard-coded truth.
WORKLOADS = [
    (HORN, make_instance("Hand(h)"),
     parse_cq("q(x) <- hasFinger(x,y) & Thumb(y)"), (Const("h"),)),
    (HORN, make_instance("Hand(h)"),
     parse_cq("q(x) <- hasFinger(x,y) & Digit(y)"), (Const("h"),)),
    (HORN, make_instance("Hand(h)"),
     parse_cq("q(x) <- hasFinger(x,y) & Index(y)"), (Const("h"),)),
    (NON_HORN, make_instance("P(a)"),
     parse_cq("q() <- R(x,y) & P(y)"), ()),
    (NON_HORN, make_instance("P(a)"),
     parse_cq("q(x) <- P(x)"), (Const("a"),)),
    (NON_HORN, make_instance("P(a)"),
     parse_ucq("q() <- R(x,y) ; q() <- S(x,y)"), ()),
]


class TestFaultPlanParsing:
    def test_rate_becomes_period(self):
        plan = parse_faults("chase_truncate:0.2")
        assert plan.specs["chase_truncate"].period == 5
        fires = [plan.hit("chase_truncate") for _ in range(10)]
        assert fires == [False] * 4 + [True] + [False] * 4 + [True]

    def test_at_fires_exactly_once(self):
        plan = parse_faults("deadline:@3")
        assert [plan.hit("deadline") for _ in range(5)] == [
            False, False, True, False, False]

    def test_bare_site_fires_always(self):
        plan = parse_faults("cdcl_conflicts")
        assert all(plan.hit("cdcl_conflicts") for _ in range(3))

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            parse_faults("warp_core:0.5")
        with pytest.raises(ValueError):
            parse_faults("deadline:2.0")
        with pytest.raises(ValueError):
            parse_faults("deadline:@0")

    def test_empty_plan_is_none(self):
        assert parse_faults("") is None
        assert parse_faults(" , ") is None

    def test_unlisted_site_never_fires(self):
        plan = parse_faults("deadline")
        assert not plan.hit("chase_truncate")

    def test_env_plan_is_cached_per_value(self, monkeypatch):
        import repro.runtime.faults as faults
        monkeypatch.setattr(faults, "_cache", None)
        monkeypatch.setenv("REPRO_FAULTS", "deadline:@1")
        first = faults.active_plan()
        assert faults.active_plan() is first
        monkeypatch.setenv("REPRO_FAULTS", "cdcl_conflicts")
        assert faults.active_plan() is not first


class TestChaseTruncationFault:
    """Injected depth exhaustion: the engine must fall back (observably)
    and still converge to the unbudgeted verdict."""

    @pytest.mark.parametrize("onto,data,query,answer", WORKLOADS)
    def test_ladder_converges_under_truncation(self, onto, data, query, answer):
        engine = CertainEngine(onto)
        expected = engine.entails(data, query, answer)
        budget = Budget(timeout=60,
                        faults=FaultPlan([FaultSpec("chase_truncate")]))
        outcome = engine.entails_outcome(data, query, answer, budget=budget)
        assert outcome.verdict is (Verdict.YES if expected else Verdict.NO)
        # every chase rung was truncated, so SAT must have answered —
        # except when the query holds on the truncated branches (chase
        # *yes* answers survive truncation by the universality argument).
        if outcome.engine == "sat":
            assert outcome.fallback is not None
            assert "truncated" in outcome.fallback

    @pytest.mark.parametrize("onto,data,query,answer", WORKLOADS[:2])
    def test_partial_truncation_rate(self, onto, data, query, answer):
        engine = CertainEngine(onto)
        expected = engine.entails(data, query, answer)
        budget = Budget(
            timeout=60,
            faults=FaultPlan([FaultSpec("chase_truncate", period=2)]))
        outcome = engine.entails_outcome(data, query, answer, budget=budget)
        assert outcome.verdict is (Verdict.YES if expected else Verdict.NO)

    def test_consistency_under_truncation(self):
        engine = CertainEngine(NON_HORN)
        data = make_instance("P(a)")
        expected = engine.is_consistent(data)
        budget = Budget(timeout=60,
                        faults=FaultPlan([FaultSpec("chase_truncate")]))
        assert engine.is_consistent(data, budget=budget) == expected
        # every existential trigger was truncated, so no complete branch
        # could witness consistency: SAT must have answered.
        assert engine.last_outcome.engine == "sat"
        assert "truncated" in engine.last_outcome.fallback

    def test_truncation_cannot_fake_consistency(self):
        """A truncated consistent branch is not a model witness: the
        contradiction sits behind an existential trigger, and injected
        truncation must not turn it into a YES."""
        deep_bad = ontology("""
forall x (x = x -> (P(x) -> exists y (R(x,y) & Bad(y))))
forall x (x = x -> (Bad(x) -> false))
""")
        engine = CertainEngine(deep_bad)
        data = make_instance("P(a)")
        assert not engine.is_consistent(data)
        budget = Budget(timeout=60,
                        faults=FaultPlan([FaultSpec("chase_truncate")]))
        assert not engine.is_consistent(data, budget=budget)


class TestDeadlineFault:
    @pytest.mark.parametrize("onto", [HORN, NON_HORN])
    def test_injected_expiry_yields_unknown(self, onto):
        engine = CertainEngine(onto)
        data = make_instance(*(["Hand(h)"] if onto is HORN else ["P(a)"]))
        query = parse_cq("q() <- Z(z)")
        budget = Budget(faults=FaultPlan([FaultSpec("deadline", at=1)]))
        outcome = engine.entails_outcome(data, query, (), budget=budget)
        assert outcome.verdict is Verdict.UNKNOWN
        assert "deadline" in outcome.reason
        with pytest.raises(ResourceExhausted):
            engine.entails(data, query, (),
                           budget=Budget(faults=FaultPlan(
                               [FaultSpec("deadline", at=1)])))

    def test_late_injection_lets_easy_instances_finish(self):
        engine = CertainEngine(HORN)
        data = make_instance("Hand(h)")
        budget = Budget(faults=FaultPlan([FaultSpec("deadline", at=10_000)]))
        assert engine.entails(
            data, parse_cq("q(x) <- hasFinger(x,y) & Thumb(y)"),
            (Const("h"),), budget=budget)


class TestCdclConflictFault:
    def test_injected_conflict_cap_yields_unknown(self):
        # UNSAT countermodel search guarantees conflicts: 2-coloring K3.
        from repro.csp import encode_template
        template = clique_template(2).with_precoloring()
        enc = encode_template(template, style="eq")
        triangle = random_graph_instance(3, [(0, 1), (1, 2), (2, 0)])
        data = enc.omq_instance(triangle)
        engine = CertainEngine(enc.ontology)
        expected = engine.entails(data, enc.query, ())
        assert expected is True  # not 2-colorable: the query is certain
        budget = Budget(faults=FaultPlan([FaultSpec("cdcl_conflicts", at=1)]))
        outcome = engine.entails_outcome(data, enc.query, (), budget=budget)
        assert outcome.verdict is Verdict.UNKNOWN
        assert "conflicts" in outcome.reason
        # the ladder trace records the budgeted SAT rung
        assert outcome.attempts[-1].result == "budget"

    def test_conflict_cap_on_horn_ontology_is_harmless(self):
        # Horn + chase answer: the CDCL checkpoint is never reached.
        engine = CertainEngine(HORN)
        budget = Budget(faults=FaultPlan([FaultSpec("cdcl_conflicts", at=1)]))
        assert engine.entails(
            make_instance("Hand(h)"),
            parse_cq("q(x) <- hasFinger(x,y) & Thumb(y)"),
            (Const("h"),), budget=budget)


class TestBacktrackFaults:
    def test_csp_backtrack_fault(self):
        template = clique_template(3)
        graph = random_graph_instance(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert solve(graph, template) is not None
        budget = Budget(faults=FaultPlan([FaultSpec("csp_backtracks", at=1)]))
        with pytest.raises(BudgetExceeded) as err:
            solve(graph, template, budget=budget)
        assert err.value.resource == "backtracks"

    def test_csp_backtrack_limit(self):
        template = clique_template(3)
        graph = random_graph_instance(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        with pytest.raises(BudgetExceeded):
            solve(graph, template, budget=Budget(backtracks=1))
        assert solve(graph, template, budget=Budget(backtracks=10_000))

    @staticmethod
    def _flip_machine():
        return TM(
            states={"S", "A"},
            alphabet={"0", "1"},
            transitions=[
                Transition("S", "0", "S", "1", "R"),
                Transition("S", "1", "S", "0", "R"),
                Transition("S", BLANK, "A", BLANK, "R"),
            ],
            start="S",
            accept="A",
        )

    def test_rf_backtrack_fault(self):
        tm = self._flip_machine()
        partial = blank_partial_run(width=5, steps=3)
        assert fits(tm, partial) is not None
        budget = Budget(faults=FaultPlan([FaultSpec("rf_backtracks", at=1)]))
        with pytest.raises(BudgetExceeded) as err:
            fits(tm, partial, budget=budget)
        assert err.value.resource == "backtracks"

    def test_rf_late_fault_lets_search_finish(self):
        tm = self._flip_machine()
        partial = blank_partial_run(width=5, steps=3)
        budget = Budget(faults=FaultPlan(
            [FaultSpec("rf_backtracks", at=10_000)]))
        assert fits(tm, partial, budget=budget) is not None


class TestKillFaults:
    """The kill: fault kind: parsing, independent counters, and the hard
    exit (stubbed — real process deaths are covered by the serving
    resilience suite)."""

    def test_parse_kill_prefix(self):
        plan = parse_faults("kill:chase_truncate:@2")
        assert not plan.specs  # no limit spec
        assert plan.kills["chase_truncate"].at == 2
        assert plan.kills["chase_truncate"].kind == "kill"
        assert bool(plan)

    def test_kill_rejects_unknown_site(self):
        with pytest.raises(ValueError):
            parse_faults("kill:warp_core:@1")

    def test_kill_fires_hard_kill_at_the_scheduled_hit(self, monkeypatch):
        import repro.runtime.faults as faults
        killed = []
        monkeypatch.setattr(faults, "hard_kill", killed.append)
        plan = parse_faults("kill:deadline:@3")
        for _ in range(5):
            plan.hit("deadline")
        assert killed == ["deadline"]  # exactly once, on the 3rd hit

    def test_kill_and_limit_counters_are_independent(self, monkeypatch):
        import repro.runtime.faults as faults
        killed = []
        monkeypatch.setattr(faults, "hard_kill", killed.append)
        plan = parse_faults("deadline:@2,kill:deadline:@5")
        fired = [plan.hit("deadline") for _ in range(6)]
        assert fired == [False, True, False, False, False, False]
        assert killed == ["deadline"]
        assert plan.kill_hits["deadline"] == 6

    def test_kill_specs_ship_through_to_kwargs(self, no_ambient_faults):
        budget = Budget(faults=parse_faults("kill:chase_truncate:@1"))
        clone = Budget(**budget.to_kwargs())
        assert clone.faults is not budget.faults
        assert clone.faults.kills["chase_truncate"].at == 1
        assert clone.faults.kill_hits == {"chase_truncate": 0}

    def test_kill_specs_survive_split_and_escalated(self, no_ambient_faults):
        budget = Budget(chase_steps=10,
                        faults=parse_faults("kill:deadline:@4"))
        child = budget.split(2)[0]
        assert child.faults.kills["deadline"].at == 4
        retry = budget.escalated(2.0)
        assert retry.faults.kills["deadline"].at == 4
        assert retry.faults.kill_hits == {"deadline": 0}  # counters restart

    def test_kill_exit_code_is_distinctive(self):
        from repro.runtime import KILL_EXIT_CODE
        assert KILL_EXIT_CODE == 87


class TestBudgetEscalated:
    def test_limits_scale_and_spent_pools_reset(self, no_ambient_faults):
        base = Budget(chase_steps=10, nulls=4, conflicts=8, backtracks=6,
                      timeout=2.0, escalate=False)
        # Burn most of the base allocation, as a failed attempt would.
        base.spent_chase_steps = 9
        base.spent_nulls = 4
        retry = base.escalated(2.0)
        assert retry.max_chase_steps == 20
        assert retry.max_nulls == 8
        assert retry.max_conflicts == 16
        assert retry.max_backtracks == 12
        assert retry.timeout == pytest.approx(4.0)
        assert retry.escalate is False
        # The regression that motivated this method: the retry starts from
        # a *fresh* allocation, not the base's spent pools.
        assert retry.spent_chase_steps == 0
        assert retry.spent_nulls == 0
        for _ in range(15):
            retry.tick_chase_step()  # would blow a spent-pool carry-over

    def test_escalated_child_is_lazy(self, no_ambient_faults):
        retry = Budget(timeout=1.0).escalated(2.0)
        assert retry._start is None  # deadline anchors at first checkpoint

    def test_unlimited_stays_unlimited(self, no_ambient_faults):
        retry = Budget().escalated(3.0)
        assert retry.timeout is None and retry.max_chase_steps is None

    def test_factor_must_be_positive(self):
        with pytest.raises(ValueError):
            Budget().escalated(0)

    def test_retry_after_starved_split_child_succeeds(self, no_ambient_faults):
        # End to end: a split child too small to answer, escalated into one
        # that is.  This is the satellite regression — retries must never
        # inherit the spent pools of the failed attempt.
        from repro.runtime import ResourceExhausted
        from repro.semantics.certain import CertainEngine
        onto = HORN
        data = make_instance("Hand(h1)", "Hand(h2)", "Hand(h3)")
        query = parse_cq("q(x) <- hasFinger(x,y) & Thumb(y)")
        child = Budget(nulls=2, chase_steps=2, conflicts=2,
                       escalate=False).split(2)[0]
        engine = CertainEngine(onto)
        with pytest.raises(ResourceExhausted):
            engine.certain_answers(data, query, budget=child)
        retry = child.escalated(64.0)
        assert engine.certain_answers(data, query, budget=retry) == {
            (Const("h1"),), (Const("h2"),), (Const("h3"),)}
