"""Fault-injection coverage: every injectable fault exercised on Horn and
non-Horn ontologies, with the escalation ladder converging to the verdict
the unbudgeted engines give."""

import pytest

from repro.csp import clique_template, random_graph_instance, solve
from repro.logic.instance import make_instance
from repro.logic.ontology import ontology
from repro.logic.syntax import Const
from repro.queries.cq import parse_cq, parse_ucq
from repro.runtime import (
    Budget, BudgetExceeded, FaultPlan, FaultSpec, ResourceExhausted, Verdict,
    parse_faults,
)
from repro.semantics.certain import CertainEngine
from repro.tm import BLANK, TM, Transition, blank_partial_run, fits

HORN = ontology("""
forall x (x = x -> (Hand(x) -> exists y (hasFinger(x,y) & Thumb(y))))
forall x,y (hasFinger(x,y) -> Digit(y))
""")
NON_HORN = ontology("""
forall x (P(x) -> (A(x) | B(x)))
forall x (x = x -> (A(x) -> exists y (R(x,y) & P(y))))
forall x (x = x -> (B(x) -> exists y (S(x,y) & Q(y))))
""")

# (ontology, data, query, answer) tier-1-style fixtures; expected verdicts
# come from the unbudgeted engines at runtime, not from hard-coded truth.
WORKLOADS = [
    (HORN, make_instance("Hand(h)"),
     parse_cq("q(x) <- hasFinger(x,y) & Thumb(y)"), (Const("h"),)),
    (HORN, make_instance("Hand(h)"),
     parse_cq("q(x) <- hasFinger(x,y) & Digit(y)"), (Const("h"),)),
    (HORN, make_instance("Hand(h)"),
     parse_cq("q(x) <- hasFinger(x,y) & Index(y)"), (Const("h"),)),
    (NON_HORN, make_instance("P(a)"),
     parse_cq("q() <- R(x,y) & P(y)"), ()),
    (NON_HORN, make_instance("P(a)"),
     parse_cq("q(x) <- P(x)"), (Const("a"),)),
    (NON_HORN, make_instance("P(a)"),
     parse_ucq("q() <- R(x,y) ; q() <- S(x,y)"), ()),
]


class TestFaultPlanParsing:
    def test_rate_becomes_period(self):
        plan = parse_faults("chase_truncate:0.2")
        assert plan.specs["chase_truncate"].period == 5
        fires = [plan.hit("chase_truncate") for _ in range(10)]
        assert fires == [False] * 4 + [True] + [False] * 4 + [True]

    def test_at_fires_exactly_once(self):
        plan = parse_faults("deadline:@3")
        assert [plan.hit("deadline") for _ in range(5)] == [
            False, False, True, False, False]

    def test_bare_site_fires_always(self):
        plan = parse_faults("cdcl_conflicts")
        assert all(plan.hit("cdcl_conflicts") for _ in range(3))

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            parse_faults("warp_core:0.5")
        with pytest.raises(ValueError):
            parse_faults("deadline:2.0")
        with pytest.raises(ValueError):
            parse_faults("deadline:@0")

    def test_empty_plan_is_none(self):
        assert parse_faults("") is None
        assert parse_faults(" , ") is None

    def test_unlisted_site_never_fires(self):
        plan = parse_faults("deadline")
        assert not plan.hit("chase_truncate")

    def test_env_plan_is_cached_per_value(self, monkeypatch):
        import repro.runtime.faults as faults
        monkeypatch.setattr(faults, "_cache", None)
        monkeypatch.setenv("REPRO_FAULTS", "deadline:@1")
        first = faults.active_plan()
        assert faults.active_plan() is first
        monkeypatch.setenv("REPRO_FAULTS", "cdcl_conflicts")
        assert faults.active_plan() is not first


class TestChaseTruncationFault:
    """Injected depth exhaustion: the engine must fall back (observably)
    and still converge to the unbudgeted verdict."""

    @pytest.mark.parametrize("onto,data,query,answer", WORKLOADS)
    def test_ladder_converges_under_truncation(self, onto, data, query, answer):
        engine = CertainEngine(onto)
        expected = engine.entails(data, query, answer)
        budget = Budget(timeout=60,
                        faults=FaultPlan([FaultSpec("chase_truncate")]))
        outcome = engine.entails_outcome(data, query, answer, budget=budget)
        assert outcome.verdict is (Verdict.YES if expected else Verdict.NO)
        # every chase rung was truncated, so SAT must have answered —
        # except when the query holds on the truncated branches (chase
        # *yes* answers survive truncation by the universality argument).
        if outcome.engine == "sat":
            assert outcome.fallback is not None
            assert "truncated" in outcome.fallback

    @pytest.mark.parametrize("onto,data,query,answer", WORKLOADS[:2])
    def test_partial_truncation_rate(self, onto, data, query, answer):
        engine = CertainEngine(onto)
        expected = engine.entails(data, query, answer)
        budget = Budget(
            timeout=60,
            faults=FaultPlan([FaultSpec("chase_truncate", period=2)]))
        outcome = engine.entails_outcome(data, query, answer, budget=budget)
        assert outcome.verdict is (Verdict.YES if expected else Verdict.NO)

    def test_consistency_under_truncation(self):
        engine = CertainEngine(NON_HORN)
        data = make_instance("P(a)")
        expected = engine.is_consistent(data)
        budget = Budget(timeout=60,
                        faults=FaultPlan([FaultSpec("chase_truncate")]))
        assert engine.is_consistent(data, budget=budget) == expected
        # every existential trigger was truncated, so no complete branch
        # could witness consistency: SAT must have answered.
        assert engine.last_outcome.engine == "sat"
        assert "truncated" in engine.last_outcome.fallback

    def test_truncation_cannot_fake_consistency(self):
        """A truncated consistent branch is not a model witness: the
        contradiction sits behind an existential trigger, and injected
        truncation must not turn it into a YES."""
        deep_bad = ontology("""
forall x (x = x -> (P(x) -> exists y (R(x,y) & Bad(y))))
forall x (x = x -> (Bad(x) -> false))
""")
        engine = CertainEngine(deep_bad)
        data = make_instance("P(a)")
        assert not engine.is_consistent(data)
        budget = Budget(timeout=60,
                        faults=FaultPlan([FaultSpec("chase_truncate")]))
        assert not engine.is_consistent(data, budget=budget)


class TestDeadlineFault:
    @pytest.mark.parametrize("onto", [HORN, NON_HORN])
    def test_injected_expiry_yields_unknown(self, onto):
        engine = CertainEngine(onto)
        data = make_instance(*(["Hand(h)"] if onto is HORN else ["P(a)"]))
        query = parse_cq("q() <- Z(z)")
        budget = Budget(faults=FaultPlan([FaultSpec("deadline", at=1)]))
        outcome = engine.entails_outcome(data, query, (), budget=budget)
        assert outcome.verdict is Verdict.UNKNOWN
        assert "deadline" in outcome.reason
        with pytest.raises(ResourceExhausted):
            engine.entails(data, query, (),
                           budget=Budget(faults=FaultPlan(
                               [FaultSpec("deadline", at=1)])))

    def test_late_injection_lets_easy_instances_finish(self):
        engine = CertainEngine(HORN)
        data = make_instance("Hand(h)")
        budget = Budget(faults=FaultPlan([FaultSpec("deadline", at=10_000)]))
        assert engine.entails(
            data, parse_cq("q(x) <- hasFinger(x,y) & Thumb(y)"),
            (Const("h"),), budget=budget)


class TestCdclConflictFault:
    def test_injected_conflict_cap_yields_unknown(self):
        # UNSAT countermodel search guarantees conflicts: 2-coloring K3.
        from repro.csp import encode_template
        template = clique_template(2).with_precoloring()
        enc = encode_template(template, style="eq")
        triangle = random_graph_instance(3, [(0, 1), (1, 2), (2, 0)])
        data = enc.omq_instance(triangle)
        engine = CertainEngine(enc.ontology)
        expected = engine.entails(data, enc.query, ())
        assert expected is True  # not 2-colorable: the query is certain
        budget = Budget(faults=FaultPlan([FaultSpec("cdcl_conflicts", at=1)]))
        outcome = engine.entails_outcome(data, enc.query, (), budget=budget)
        assert outcome.verdict is Verdict.UNKNOWN
        assert "conflicts" in outcome.reason
        # the ladder trace records the budgeted SAT rung
        assert outcome.attempts[-1].result == "budget"

    def test_conflict_cap_on_horn_ontology_is_harmless(self):
        # Horn + chase answer: the CDCL checkpoint is never reached.
        engine = CertainEngine(HORN)
        budget = Budget(faults=FaultPlan([FaultSpec("cdcl_conflicts", at=1)]))
        assert engine.entails(
            make_instance("Hand(h)"),
            parse_cq("q(x) <- hasFinger(x,y) & Thumb(y)"),
            (Const("h"),), budget=budget)


class TestBacktrackFaults:
    def test_csp_backtrack_fault(self):
        template = clique_template(3)
        graph = random_graph_instance(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert solve(graph, template) is not None
        budget = Budget(faults=FaultPlan([FaultSpec("csp_backtracks", at=1)]))
        with pytest.raises(BudgetExceeded) as err:
            solve(graph, template, budget=budget)
        assert err.value.resource == "backtracks"

    def test_csp_backtrack_limit(self):
        template = clique_template(3)
        graph = random_graph_instance(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        with pytest.raises(BudgetExceeded):
            solve(graph, template, budget=Budget(backtracks=1))
        assert solve(graph, template, budget=Budget(backtracks=10_000))

    @staticmethod
    def _flip_machine():
        return TM(
            states={"S", "A"},
            alphabet={"0", "1"},
            transitions=[
                Transition("S", "0", "S", "1", "R"),
                Transition("S", "1", "S", "0", "R"),
                Transition("S", BLANK, "A", BLANK, "R"),
            ],
            start="S",
            accept="A",
        )

    def test_rf_backtrack_fault(self):
        tm = self._flip_machine()
        partial = blank_partial_run(width=5, steps=3)
        assert fits(tm, partial) is not None
        budget = Budget(faults=FaultPlan([FaultSpec("rf_backtracks", at=1)]))
        with pytest.raises(BudgetExceeded) as err:
            fits(tm, partial, budget=budget)
        assert err.value.resource == "backtracks"

    def test_rf_late_fault_lets_search_finish(self):
        tm = self._flip_machine()
        partial = blank_partial_run(width=5, steps=3)
        budget = Budget(faults=FaultPlan(
            [FaultSpec("rf_backtracks", at=10_000)]))
        assert fits(tm, partial, budget=budget) is not None
