"""Unit tests for the SAT layer: grounding, CNF encoding, CDCL, DPLL."""

import itertools

import pytest

from repro.logic.instance import make_instance
from repro.logic.model_check import evaluate
from repro.logic.parser import parse_formula
from repro.logic.syntax import And, Atom, Bottom, Const, Not, Or, Top, Var
from repro.semantics.cdcl import Solver, solve_cnf
from repro.semantics.sat import (
    CNF, add_formula, add_formula_iff, dpll, dpll_basic, ground,
    model_to_interpretation,
)

a, b = Const("a"), Const("b")


class TestGrounding:
    def test_forall_expands(self):
        phi = ground(parse_formula("forall x (x = x -> A(x))"), [a, b])
        assert isinstance(phi, And)
        assert len(phi.conjuncts) == 2

    def test_exists_expands(self):
        phi = ground(parse_formula("exists x (A(x) & B(x))"), [a, b])
        assert isinstance(phi, Or)

    def test_equality_resolves(self):
        phi = ground(parse_formula("forall x,y (R(x,y) -> x = y)"), [a, b])
        # R(a,b) -> a=b grounds to ~R(a,b); R(a,a) -> Top vanishes
        cnf = CNF()
        add_formula(cnf, phi)
        model = dpll(cnf)
        assert model is not None
        # R(a,b) must be false in every model
        var = cnf.var_of.get(("R", (a, b)))
        assert var is None or not model[var]

    def test_counting_over_small_domain(self):
        phi = ground(parse_formula("exists>=2 y (R(x,y))"), [a, b],
                     {Var("x"): a})
        cnf = CNF()
        add_formula(cnf, phi)
        model = dpll(cnf)
        assert model is not None
        interp = model_to_interpretation(cnf, model)
        assert len(interp.tuples("R")) == 2

    def test_counting_infeasible(self):
        phi = ground(parse_formula("exists>=3 y (R(x,y))"), [a, b],
                     {Var("x"): a})
        assert phi == Bottom()

    def test_guard_none_forall(self):
        phi = ground(parse_formula("forall x (A(x) | B(x))"), [a])
        cnf = CNF()
        add_formula(cnf, phi)
        assert dpll(cnf) is not None

    def test_nested_shadowed_variable(self):
        phi = parse_formula(
            "forall x (x = x -> (A(x) -> exists y (R(x,y) & "
            "exists x (S(y,x) & B(x)))))")
        g = ground(phi, [a, b])
        cnf = CNF()
        add_formula(cnf, g)
        assert dpll(cnf) is not None


class TestEncoding:
    def test_add_formula_iff_positive(self):
        cnf = CNF()
        ind = cnf.aux_var()
        add_formula_iff(cnf, ind, Atom("A", (a,)))
        atom_var = cnf.atom_var(("A", (a,)))
        # indicator true forces atom true
        model = solve_cnf(cnf.num_vars, cnf.clauses, [ind])
        assert model is not None and model[atom_var]
        # indicator false forces atom false
        model2 = solve_cnf(cnf.num_vars, cnf.clauses, [-ind])
        assert model2 is not None and not model2[atom_var]

    def test_add_formula_iff_valid(self):
        cnf = CNF()
        ind = cnf.aux_var()
        add_formula_iff(cnf, ind, Top())
        model = dpll(cnf)
        assert model is not None and model[ind]

    def test_add_formula_iff_unsat(self):
        cnf = CNF()
        ind = cnf.aux_var()
        add_formula_iff(cnf, ind, Bottom())
        model = dpll(cnf)
        assert model is not None and not model[ind]

    def test_tautology_clause_dropped(self):
        solver = Solver(2, [[1, -1]])
        assert solver.solve() is not None

    def test_empty_clause_unsat(self):
        solver = Solver(1, [[]])
        assert solver.solve() is None


class TestCDCL:
    def test_simple_unsat(self):
        assert solve_cnf(2, [[1], [-1]]) is None

    def test_implication_chain(self):
        # 1 -> 2 -> 3 -> ... -> -1: contradiction
        clauses = [[1], [-1, 2], [-2, 3], [-3, -1]]
        assert solve_cnf(3, clauses) is None

    def test_pigeonhole_3_2(self):
        """3 pigeons in 2 holes: classically UNSAT (exercises learning)."""
        # var p_{i,h} = 1 + i*2 + h for i in 0..2, h in 0..1
        def v(i, h):
            return 1 + i * 2 + h

        clauses = [[v(i, 0), v(i, 1)] for i in range(3)]
        for h in range(2):
            for i, j in itertools.combinations(range(3), 2):
                clauses.append([-v(i, h), -v(j, h)])
        assert solve_cnf(6, clauses) is None

    def test_satisfiable_with_assumptions(self):
        model = solve_cnf(3, [[1, 2], [-1, 3]], assumptions=[1])
        assert model is not None
        assert model[1] and model[3]

    def test_conflicting_assumptions(self):
        assert solve_cnf(2, [[1]], assumptions=[-1]) is None

    def test_dpll_basic_agrees_with_cdcl(self):
        """Ablation check: the reference DPLL agrees with CDCL."""
        from repro.logic.parser import parse_formula

        cases = [
            "forall x (x = x -> (A(x) | B(x)))",
            "forall x (x = x -> (A(x) -> ~A(x)))",
            "exists x (A(x) & ~A(x))",
        ]
        for text in cases:
            phi = ground(parse_formula(text), [a, b])
            cnf1 = CNF()
            add_formula(cnf1, phi)
            cnf2 = CNF()
            add_formula(cnf2, phi)
            assert (dpll(cnf1) is None) == (dpll_basic(cnf2) is None)


class TestModelExtraction:
    def test_positive_atoms_only(self):
        cnf = CNF()
        va = cnf.atom_var(("A", (a,)))
        vb = cnf.atom_var(("B", (b,)))
        cnf.add_clause([va])
        cnf.add_clause([-vb])
        model = dpll(cnf)
        interp = model_to_interpretation(cnf, model)
        assert Atom("A", (a,)) in interp
        assert Atom("B", (b,)) not in interp

    def test_grounding_roundtrip_with_model_check(self):
        """A SAT model of a grounded sentence satisfies the sentence."""
        sentence = parse_formula(
            "forall x (x = x -> (A(x) -> exists y (R(x,y) & B(y))))")
        cnf = CNF()
        cnf.add_clause([cnf.atom_var(("A", (a,)))])
        add_formula(cnf, ground(sentence, [a, b]))
        model = dpll(cnf)
        assert model is not None
        interp = model_to_interpretation(cnf, model)
        assert evaluate(sentence, interp)
