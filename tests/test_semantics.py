"""Tests for the semantics engines: SAT search, chase, unified certain answers.

The two backends are deliberately cross-checked against each other on the
same inputs throughout (they implement independent algorithms).
"""

import pytest

from repro.logic.instance import Interpretation, make_instance
from repro.logic.ontology import Ontology, ontology
from repro.logic.model_check import satisfies_all
from repro.logic.syntax import Const
from repro.queries.cq import CQ, UCQ, parse_cq, parse_ucq
from repro.semantics.certain import CertainEngine
from repro.semantics.chase import ChaseError, chase, chase_certain_answer
from repro.semantics.modelsearch import (
    certain_answer, find_model, is_consistent,
)
from repro.semantics.rules import convert_ontology, convert_sentence
from repro.semantics.sat import CNF, add_formula, dpll, ground

a, b, c, h = Const("a"), Const("b"), Const("c"), Const("h")

HAND = ontology(
    "forall x (x = x -> (Hand(x) -> exists y (hasFinger(x,y) & Thumb(y))))")


class TestSAT:
    def test_trivial_sat(self):
        from repro.logic.parser import parse_formula
        cnf = CNF()
        add_formula(cnf, ground(parse_formula("A($a) | B($a)"), [a]))
        assert dpll(cnf) is not None

    def test_trivial_unsat(self):
        from repro.logic.parser import parse_formula
        cnf = CNF()
        add_formula(cnf, ground(parse_formula("A($a)"), [a]))
        add_formula(cnf, ground(parse_formula("~A($a)"), [a]))
        assert dpll(cnf) is None

    def test_grounding_forall(self):
        from repro.logic.parser import parse_formula
        phi = ground(parse_formula("forall x (x = x -> A(x))"), [a, b])
        cnf = CNF()
        add_formula(cnf, phi)
        model = dpll(cnf)
        assert model is not None
        # both A(a) and A(b) must be true
        assert all(model[v] for v in cnf.var_of.values())

    def test_counting_grounding_bound(self):
        from repro.logic.parser import parse_formula
        phi = parse_formula("forall x (x = x -> exists>=3 y (R(x,y)))")
        # over a 2-element domain, exists>=3 distinct y is unsatisfiable
        cnf = CNF()
        add_formula(cnf, ground(phi, [a, b]))
        assert dpll(cnf) is None


class TestFindModel:
    def test_model_contains_instance(self):
        D = make_instance("Hand(h)")
        model = find_model(HAND, D, extra=2)
        assert model is not None
        for fact in D:
            assert fact in model
        assert satisfies_all(model, HAND.all_sentences())

    def test_unsat_detected(self):
        O = ontology("forall x (x = x -> (A(x) -> false))")
        assert find_model(O, make_instance("A(a)"), extra=1) is None

    def test_consistency(self):
        O = ontology("forall x (x = x -> (A(x) -> ~B(x)))")
        assert not is_consistent(O, make_instance("A(a)", "B(a)"))
        assert is_consistent(O, make_instance("A(a)", "B(b)"))

    def test_functionality_inconsistency(self):
        O = Ontology([], functional=["F"])
        D = make_instance("F(a,b)", "F(a,c)")
        assert not is_consistent(O, D, extra=0)


class TestSATCertainAnswers:
    def test_existential_entailment(self):
        D = make_instance("Hand(h)")
        q = parse_cq("q(x) <- hasFinger(x,y) & Thumb(y)")
        assert certain_answer(HAND, D, q, (h,)).holds

    def test_non_entailment_gives_countermodel(self):
        D = make_instance("Hand(h)")
        q = parse_cq("q(x) <- hasFinger(x,y) & Index(y)")
        result = certain_answer(HAND, D, q, (h,))
        assert not result.holds
        assert result.countermodel is not None
        assert satisfies_all(result.countermodel, HAND.all_sentences())

    def test_disjunction_not_certain_but_union_is(self):
        O = ontology("forall x (x = x -> (C(x) -> (A(x) | B(x))))")
        D = make_instance("C(a)")
        qa = parse_cq("q(x) <- A(x)")
        qab = parse_ucq("q(x) <- A(x) ; q(x) <- B(x)")
        assert not certain_answer(O, D, qa, (a,)).holds
        assert certain_answer(O, D, qab, (a,)).holds

    def test_boolean_query(self):
        D = make_instance("Hand(h)")
        q = parse_cq("q() <- Thumb(y)")
        assert certain_answer(HAND, D, q).holds


class TestRuleConversion:
    def test_simple_inclusion(self):
        O = ontology("forall x (x = x -> (A(x) -> B(x)))")
        rules = convert_ontology(O)
        assert rules is not None and len(rules) == 1
        assert rules[0].body[0].pred == "A"

    def test_negative_atom_moves_to_body(self):
        from repro.logic.parser import parse_formula
        rules = convert_sentence(
            parse_formula("forall x,y (R(x,y) -> (~A(x) | B(y)))"))
        assert len(rules) == 1
        preds = {atom.pred for atom in rules[0].body}
        assert preds == {"R", "A"}

    def test_constraint_rule(self):
        O = ontology("forall x (x = x -> (A(x) -> ~B(x)))")
        rules = convert_ontology(O)
        assert rules is not None and rules[0].is_constraint()

    def test_nested_universal_extends_body(self):
        from repro.logic.parser import parse_formula
        rules = convert_sentence(parse_formula(
            "forall x (x = x -> (A(x) -> forall y (R(x,y) -> B(y))))"))
        assert len(rules) == 1
        assert len(rules[0].body) == 2

    def test_unconvertible_returns_none(self):
        # universal quantifier in a positive disjunct cannot become a head
        O = ontology(
            "forall x (x = x -> (A(x) | forall y (R(x,y) -> B(y))))")
        assert convert_ontology(O) is None

    def test_counting_head(self):
        O = ontology("forall x (x = x -> (Hand(x) -> exists>=5 y (hasFinger(x,y))))")
        rules = convert_ontology(O)
        assert rules is not None
        assert rules[0].heads[0].count == 5

    def test_conjunction_splits_rules(self):
        O = ontology("forall x (x = x -> (A(x) -> (B(x) & C(x))))")
        rules = convert_ontology(O)
        assert rules is not None
        # B(x) & C(x) is kept as one head or split into two rules
        total_atoms = sum(len(h.atoms) for r in rules for h in r.heads)
        assert total_atoms == 2


class TestChase:
    def test_universal_model(self):
        model = chase(HAND, make_instance("Hand(h)")).universal_model()
        assert parse_cq("q(x) <- hasFinger(x,y) & Thumb(y)").holds(model, (h,))

    def test_counting_creates_distinct_witnesses(self):
        O = ontology("forall x (x = x -> (Hand(x) -> exists>=5 y (hasFinger(x,y))))")
        model = chase(O, make_instance("Hand(h)")).universal_model()
        assert len(model.tuples("hasFinger")) == 5

    def test_restricted_chase_reuses_existing_witness(self):
        D = make_instance("Hand(h)", "hasFinger(h,f)", "Thumb(f)")
        model = chase(HAND, D).universal_model()
        assert len(model.tuples("hasFinger")) == 1  # no new null created

    def test_truncation_flagged(self):
        O = ontology("forall x (x = x -> exists y (R(x,y)))")
        result = chase(O, make_instance("A(a)"), max_depth=2)
        assert not result.fully_chased

    def test_disjunction_branches(self):
        O = ontology("forall x (x = x -> (C(x) -> (A(x) | B(x))))")
        result = chase(O, make_instance("C(a)"))
        assert len(result.consistent_branches()) == 2

    def test_inconsistent_instance(self):
        O = ontology("forall x (x = x -> (A(x) -> ~B(x)))")
        result = chase(O, make_instance("A(a)", "B(a)"))
        assert not result.is_consistent

    def test_functionality_merges_nulls(self):
        O = ontology(
            "forall x (x = x -> (A(x) -> exists y (R(x,y) & B(y))))",
            functional=["R"])
        D = make_instance("A(a)", "R(a,b)")
        model = chase(O, D).universal_model()
        assert parse_cq("q(y) <- B(y)").holds(model, (b,))

    def test_functionality_clash_on_constants(self):
        O = Ontology([], functional=["F"])
        result = chase(O, make_instance("F(a,b)", "F(a,c)"), rules=[])
        assert not result.is_consistent

    def test_inverse_functionality(self):
        O = Ontology(
            ontology("forall x (x = x -> (A(x) -> exists y (R(y,x) & B(y))))").sentences,
            inverse_functional=["R"])
        D = make_instance("A(a)", "R(b,a)")
        model = chase(O, D).universal_model()
        assert parse_cq("q(y) <- B(y)").holds(model, (b,))

    def test_propagation_is_polynomial_single_branch(self):
        O = ontology("forall x,y (R(x,y) -> (A(x) -> A(y)))")
        facts = [f"R(n{i},n{i+1})" for i in range(30)] + ["A(n0)"]
        D = make_instance(*facts)
        result = chase(O, D)
        assert len(result.branches) == 1
        assert parse_cq("q(x) <- A(x)").holds(
            result.universal_model(), (Const("n30"),))


class TestChaseVsSAT:
    """The two backends must agree wherever both are exact."""

    CASES = [
        (HAND, make_instance("Hand(h)"),
         parse_cq("q(x) <- hasFinger(x,y) & Thumb(y)"), (h,)),
        (HAND, make_instance("Hand(h)"),
         parse_cq("q(x) <- hasFinger(x,y) & Index(y)"), (h,)),
        (ontology("forall x (x = x -> (C(x) -> (A(x) | B(x))))"),
         make_instance("C(a)"), parse_cq("q(x) <- A(x)"), (a,)),
        (ontology("forall x (x = x -> (C(x) -> (A(x) | B(x))))"),
         make_instance("C(a)"),
         parse_ucq("q(x) <- A(x) ; q(x) <- B(x)"), (a,)),
        (ontology("forall x,y (R(x,y) -> (A(x) -> A(y)))"),
         make_instance("A(a)", "R(a,b)"), parse_cq("q(x) <- A(x)"), (b,)),
    ]

    @pytest.mark.parametrize("onto,instance,query,answer", CASES)
    def test_agreement(self, onto, instance, query, answer):
        via_chase = chase_certain_answer(onto, instance, query, answer)
        via_sat = certain_answer(onto, instance, query, answer, extra=3)
        assert via_chase.holds == via_sat.holds


class TestCertainEngine:
    def test_auto_prefers_chase(self):
        engine = CertainEngine(HAND)
        assert engine.uses_chase

    def test_fallback_to_sat(self):
        O = ontology("forall x (x = x -> (A(x) | forall y (R(x,y) -> B(y))))")
        engine = CertainEngine(O)
        assert not engine.uses_chase
        assert engine.is_consistent(make_instance("A(a)"))

    def test_certain_answers_enumeration(self):
        O = ontology("forall x,y (R(x,y) -> (A(x) -> A(y)))")
        D = make_instance("A(a)", "R(a,b)", "R(b,c)", "R(z,z)")
        engine = CertainEngine(O)
        answers = engine.certain_answers(D, parse_cq("q(x) <- A(x)"))
        assert answers == {(a,), (b,), (c,)}

    def test_saturation(self):
        O = ontology("forall x,y (R(x,y) -> (A(x) -> A(y)))")
        D = make_instance("A(a)", "R(a,b)")
        engine = CertainEngine(O)
        saturated = engine.saturate(D)
        assert parse_cq("q(x) <- A(x)").holds(saturated, (b,))
        # saturation does not invent unrelated facts
        assert len(saturated) == len(D) + 1
