"""The serving daemon: admission control, overload shedding, deadlines,
drain, watchdog, journal resume — unit, in-process HTTP and real-signal
subprocess end-to-end tests (see docs/serving.md)."""

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.logic.ontology import ontology
from repro.server import (
    BAND_HARD, BAND_PTIME, AdmissionController, ReproServer, TokenBucket,
    classify_band,
)
from repro.server.state import CANCELLED, DONE, FAILED, RUNNING, JobSetStore
from repro.serving import comparable_report, evaluate_batch, jobs_from_entries

# A Horn ontology inside the Figure-1 DICHOTOMY band: statically PTIME.
PTIME_ONTO = ("forall x (Thumb(x) -> Finger(x))\n"
              "forall x (Finger(x) -> exists y (partOf(x,y) & Hand(y)))")
# Disjunctive (not Horn): no static PTIME proof, sheds first.
HARD_ONTO = "forall x (x = x -> (C(x) -> (A(x) | B(x))))"

PTIME_JOBS = [{"query": "q(x) <- Finger(x)", "facts": ["Thumb(t)"]}]
HARD_JOBS = [{"query": "q(x) <- A(x)", "facts": ["C(c)"]}]


class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, by: float) -> None:
        self.t += by


# -- band classification ------------------------------------------------------


def test_classify_band_ptime_for_horn_dichotomy():
    band, detail = classify_band(ontology(PTIME_ONTO, name="p"))
    assert band == BAND_PTIME
    assert "PTIME" in detail


def test_classify_band_hard_for_disjunctive():
    band, detail = classify_band(ontology(HARD_ONTO, name="h"))
    assert band == BAND_HARD


def test_classify_band_is_memoized():
    onto = ontology(PTIME_ONTO, name="memo")
    assert classify_band(onto) == classify_band(onto)


# -- token bucket -------------------------------------------------------------


def test_token_bucket_burst_then_refill():
    clock = FakeClock()
    bucket = TokenBucket(rate=10.0, burst=5.0, clock=clock)
    assert bucket.try_acquire(5.0) == 0.0  # the full burst is available
    wait = bucket.try_acquire(1.0)
    assert wait == pytest.approx(0.1)  # 1 token at 10/s
    clock.advance(0.1)
    assert bucket.try_acquire(1.0) == 0.0
    clock.advance(100.0)  # refill caps at burst
    assert bucket.try_acquire(5.0) == 0.0
    assert bucket.try_acquire(5.0) > 0.0


def test_token_bucket_rejects_bad_parameters():
    with pytest.raises(ValueError):
        TokenBucket(rate=0.0, burst=1.0)
    with pytest.raises(ValueError):
        TokenBucket(rate=1.0, burst=-1.0)


# -- admission controller -----------------------------------------------------


def make_controller(**kw):
    defaults = dict(max_queued_jobs=10, high_water=0.5, rate=1000.0,
                    burst=1000.0, clock=FakeClock())
    defaults.update(kw)
    return AdmissionController(**defaults)


def test_admission_accepts_until_queue_full_then_429():
    ctl = make_controller(high_water=1.0)
    for _ in range(5):
        assert ctl.admit("a", 2, BAND_PTIME).accepted
    decision = ctl.admit("a", 1, BAND_PTIME)
    assert not decision.accepted
    assert decision.status == 429
    assert decision.retry_after is not None and decision.retry_after > 0
    assert "queue full" in decision.reason
    assert ctl.snapshot()["shed"]["queue_full"] == 1
    # Releasing capacity lets traffic flow again: bounded, not collapsed.
    ctl.release("a", 2)
    assert ctl.admit("a", 1, BAND_PTIME).accepted


def test_admission_sheds_hard_band_above_high_water_only():
    ctl = make_controller(max_queued_jobs=10, high_water=0.5)
    assert ctl.admit("a", 5, BAND_HARD).accepted  # at high water, fine
    hard = ctl.admit("a", 1, BAND_HARD)
    assert not hard.accepted and hard.status == 429
    assert "coNP" in hard.reason or "hard-band" in hard.reason
    # PTIME-band work keeps flowing until the queue is truly full.
    assert ctl.admit("a", 5, BAND_PTIME).accepted
    assert not ctl.admit("a", 1, BAND_PTIME).accepted  # now truly full
    snap = ctl.snapshot()
    assert snap["shed"]["hard_band"] == 1
    assert snap["shed"]["queue_full"] == 1


def test_admission_rate_limit_gives_exact_retry_after():
    clock = FakeClock()
    ctl = make_controller(rate=10.0, burst=5.0, clock=clock)
    assert ctl.admit("a", 5, BAND_PTIME).accepted
    decision = ctl.admit("a", 2, BAND_PTIME)
    assert not decision.accepted and decision.status == 429
    assert decision.retry_after == pytest.approx(0.2)  # 2 tokens at 10/s
    clock.advance(0.2)
    assert ctl.admit("a", 2, BAND_PTIME).accepted
    # A different client has its own bucket.
    assert ctl.admit("b", 3, BAND_PTIME).accepted


def test_admission_per_client_inflight_cap():
    ctl = make_controller(max_queued_jobs=100, max_inflight_jobs=6)
    assert ctl.admit("a", 6, BAND_PTIME).accepted
    capped = ctl.admit("a", 1, BAND_PTIME)
    assert not capped.accepted and capped.status == 429
    assert ctl.admit("b", 6, BAND_PTIME).accepted  # other tenants unaffected
    ctl.release("a", 6, elapsed=1.5)
    assert ctl.admit("a", 1, BAND_PTIME).accepted
    usage = ctl.snapshot()["clients"]["a"]
    assert usage["jobs_completed"] == 6
    assert usage["elapsed_seconds"] == pytest.approx(1.5)


def test_admission_draining_returns_503():
    ctl = make_controller()
    ctl.start_drain()
    decision = ctl.admit("a", 1, BAND_PTIME)
    assert decision.status == 503
    assert decision.retry_after is not None


def test_admission_adopt_accounts_without_checks():
    ctl = make_controller(max_queued_jobs=2)
    ctl.start_drain()
    ctl.adopt("a", 5)  # resume path: already accepted in a previous life
    snap = ctl.snapshot()
    assert snap["queued_jobs"] == 5
    assert snap["clients"]["a"]["inflight_jobs"] == 5


def test_admission_empty_submission_is_400():
    assert make_controller().admit("a", 0, BAND_PTIME).status == 400


# -- job-set store ------------------------------------------------------------


def test_store_ids_are_unique_and_resume_safe():
    store = JobSetStore()
    first = store.next_id("deadbeefcafe")
    assert first == "js-000001-deadbeef"
    store.adopt_id("js-000041-cafecafe")
    assert store.next_id("deadbeefcafe").startswith("js-000042-")
    store.adopt_id("garbage")  # unparseable ids are ignored
    store.adopt_id("js-notanum-zz")


# -- the in-process daemon over HTTP ------------------------------------------


@pytest.fixture
def server(request, tmp_path):
    """A started daemon; parametrize via request.param-style helpers."""
    servers = []

    def start(**kw):
        kw.setdefault("fastpath", "auto")
        srv = ReproServer(**kw)
        srv.start()
        servers.append(srv)
        return srv

    yield start
    for srv in servers:
        srv.stop()


def api(srv, method, path, body=None, client="test"):
    conn = http.client.HTTPConnection("127.0.0.1", srv.port, timeout=30)
    try:
        headers = {"X-Client": client}
        data = None
        if body is not None:
            data = body if isinstance(body, (str, bytes)) else json.dumps(body)
            headers["Content-Type"] = "application/json"
        conn.request(method, path, data, headers)
        resp = conn.getresponse()
        raw = resp.read()
        resp_headers = dict(resp.getheaders())
    finally:
        conn.close()
    try:
        parsed = json.loads(raw)
    except ValueError:
        parsed = raw.decode("utf-8", "replace")
    return resp.status, parsed, resp_headers


def wait_terminal(srv, jobset_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, body, _ = api(srv, "GET", f"/v1/jobsets/{jobset_id}/result")
        if status == 200:
            return body
        time.sleep(0.01)
    raise AssertionError(f"job set {jobset_id} never finished")


def gate_dispatcher(srv):
    """Block the dispatcher before it runs anything, so tests can fill
    the admission queue deterministically.  Returns the release event."""
    gate = threading.Event()
    original = srv._run_jobset

    def gated(jobset):
        gate.wait(30.0)
        original(jobset)

    srv._run_jobset = gated
    return gate


def test_submit_poll_result_end_to_end(server):
    srv = server(workers=1)
    status, body, _ = api(srv, "POST", "/v1/jobsets", {
        "ontology": PTIME_ONTO,
        "jobs": [{"query": "q(x) <- Finger(x)", "facts": ["Thumb(t1)"]},
                 {"query": "q() <- Hand(y)", "facts": ["Thumb(t1)"]}]})
    assert status == 202
    assert body["band"] == BAND_PTIME
    assert body["jobs"] == 2
    result = wait_terminal(srv, body["id"])
    assert result["status"] == DONE
    jobs = result["report"]["jobs"]
    assert [j["verdict"] for j in jobs] == ["ok", "yes"]
    assert jobs[0]["answers"] == [["t1"]]
    # Status endpoint agrees.
    status, summary, _ = api(srv, "GET", f"/v1/jobsets/{body['id']}")
    assert status == 200 and summary["completed_jobs"] == 2
    # The listing shows it too.
    status, listing, _ = api(srv, "GET", "/v1/jobsets")
    assert [js["id"] for js in listing["jobsets"]] == [body["id"]]


def test_health_ready_and_unknown_routes(server):
    srv = server()
    assert api(srv, "GET", "/healthz")[0] == 200
    assert api(srv, "GET", "/readyz")[0] == 200
    assert api(srv, "GET", "/nope")[0] == 404
    assert api(srv, "POST", "/nope", {})[0] == 404
    assert api(srv, "DELETE", "/nope")[0] == 404
    assert api(srv, "GET", "/v1/jobsets/zzz")[0] == 404
    assert api(srv, "GET", "/v1/jobsets/zzz/result")[0] == 404
    assert api(srv, "DELETE", "/v1/jobsets/zzz")[0] == 404


def test_bad_submissions_are_400(server):
    srv = server()
    cases = [
        "{not json",
        {"jobs": PTIME_JOBS},  # no ontology
        {"ontology": "forall x (", "jobs": PTIME_JOBS},  # parse error
        {"ontology": PTIME_ONTO, "jobs": []},
        {"ontology": PTIME_ONTO, "jobs": [{"facts": ["A(a)"]}]},  # no query
        {"ontology": PTIME_ONTO,  # server-side paths refused
         "jobs": [{"query": "q(x) <- A(x)", "data": "/etc/passwd"}]},
        {"ontology": PTIME_ONTO, "jobs": PTIME_JOBS,
         "options": {"sneaky": 1}},
        {"ontology": PTIME_ONTO, "jobs": PTIME_JOBS,
         "options": {"budget": "bogus=1"}},
        {"ontology": PTIME_ONTO, "jobs": PTIME_JOBS, "deadline": -1},
        {"ontology": PTIME_ONTO, "jobs": PTIME_JOBS, "deadline": "soon"},
    ]
    for payload in cases:
        status, body, _ = api(srv, "POST", "/v1/jobsets", payload)
        assert status == 400, payload
        assert "error" in body


def test_queue_full_returns_429_with_retry_after(server):
    srv = server(max_queued_jobs=2, high_water=1.0)
    gate = gate_dispatcher(srv)
    body = {"ontology": PTIME_ONTO, "jobs": PTIME_JOBS}
    ids = []
    for _ in range(2):
        status, accepted, _ = api(srv, "POST", "/v1/jobsets", body)
        assert status == 202
        ids.append(accepted["id"])
    status, rejected, headers = api(srv, "POST", "/v1/jobsets", body)
    assert status == 429
    assert "Retry-After" in headers
    assert int(headers["Retry-After"]) >= 1
    assert "queue full" in rejected["reason"]
    gate.set()
    for jobset_id in ids:
        assert wait_terminal(srv, jobset_id)["status"] == DONE
    # Capacity came back: the queue is bounded, not collapsed.
    status, _, _ = api(srv, "POST", "/v1/jobsets", body)
    assert status == 202


def test_overload_sheds_hard_band_before_ptime_band(server):
    srv = server(max_queued_jobs=4, high_water=0.5)
    gate = gate_dispatcher(srv)
    ptime = {"ontology": PTIME_ONTO, "jobs": PTIME_JOBS}
    hard = {"ontology": HARD_ONTO, "jobs": HARD_JOBS}
    assert api(srv, "POST", "/v1/jobsets", ptime)[0] == 202
    assert api(srv, "POST", "/v1/jobsets", hard)[0] == 202  # at high water
    # Above high water: potentially-coNP work sheds first...
    status, rejected, headers = api(srv, "POST", "/v1/jobsets", hard)
    assert status == 429 and "Retry-After" in headers
    assert "hard-band" in rejected["reason"] or "coNP" in rejected["reason"]
    assert rejected["band"] == BAND_HARD
    # ...while statically-PTIME traffic keeps flowing.
    assert api(srv, "POST", "/v1/jobsets", ptime)[0] == 202
    assert api(srv, "POST", "/v1/jobsets", ptime)[0] == 202  # truly full now
    assert api(srv, "POST", "/v1/jobsets", ptime)[0] == 429
    gate.set()


def test_cancel_queued_jobset(server):
    srv = server(max_queued_jobs=10)
    gate = gate_dispatcher(srv)
    running = api(srv, "POST", "/v1/jobsets",
                  {"ontology": PTIME_ONTO, "jobs": PTIME_JOBS})[1]
    queued = api(srv, "POST", "/v1/jobsets",
                 {"ontology": PTIME_ONTO, "jobs": PTIME_JOBS})[1]
    status, body, _ = api(srv, "DELETE", f"/v1/jobsets/{queued['id']}")
    assert status == 200 and body["status"] == CANCELLED
    # Terminal: cancelling again conflicts.
    assert api(srv, "DELETE", f"/v1/jobsets/{queued['id']}")[0] == 409
    gate.set()
    assert wait_terminal(srv, running["id"])["status"] == DONE
    status, body, _ = api(srv, "GET", f"/v1/jobsets/{queued['id']}/result")
    assert status == 200 and body["status"] == CANCELLED
    assert "report" not in body


def test_deadline_expired_while_queued_fails_without_running(server):
    srv = server()
    gate = gate_dispatcher(srv)
    accepted = api(srv, "POST", "/v1/jobsets", {
        "ontology": PTIME_ONTO, "jobs": PTIME_JOBS, "deadline": 0.05})[1]
    time.sleep(0.15)
    gate.set()
    result = wait_terminal(srv, accepted["id"])
    assert result["status"] == FAILED
    assert "deadline" in result["error"]
    assert "report" not in result


def test_drain_finishes_accepted_work_and_refuses_new(server):
    srv = server(max_queued_jobs=10)
    gate = gate_dispatcher(srv)
    body = {"ontology": PTIME_ONTO, "jobs": PTIME_JOBS}
    ids = [api(srv, "POST", "/v1/jobsets", body)[1]["id"] for _ in range(2)]
    srv.begin_drain()
    status, rejected, headers = api(srv, "POST", "/v1/jobsets", body)
    assert status == 503 and "Retry-After" in headers
    assert api(srv, "GET", "/readyz")[0] == 503
    assert api(srv, "GET", "/healthz")[0] == 200  # alive, just not ready
    gate.set()
    assert srv.drain(timeout=30.0)
    for jobset_id in ids:
        assert wait_terminal(srv, jobset_id)["status"] == DONE


def test_metrics_endpoint_renders_prometheus(server):
    srv = server()
    accepted = api(srv, "POST", "/v1/jobsets",
                   {"ontology": PTIME_ONTO, "jobs": PTIME_JOBS})[1]
    wait_terminal(srv, accepted["id"])
    status, text, headers = api(srv, "GET", "/metrics")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain")
    assert "# TYPE repro_server_jobsets_accepted counter" in text
    assert "repro_server_jobsets_accepted 1" in text
    assert "repro_server_jobsets_completed 1" in text
    assert "# TYPE repro_server_jobset_seconds summary" in text
    assert "repro_server_queued_jobs 0" in text
    assert "repro_server_draining 0" in text
    assert "repro_cache_plan_size" in text
    assert "repro_cache_conversion_size" in text
    assert "repro_cache_answer_hits" in text


# -- watchdog -----------------------------------------------------------------


class _FakeProcess:
    def __init__(self):
        self.killed = False

    def kill(self):
        self.killed = True


class _FakePool:
    workers = 2

    def __init__(self):
        self._pool = type("E", (), {})()
        self._pool._processes = {1: _FakeProcess(), 2: _FakeProcess()}

    def stats(self):
        return {"pool_deaths": 0}

    def close(self):
        pass


def test_watchdog_kills_wedged_pool_once_per_window():
    clock = FakeClock()
    srv = ReproServer(wedge_timeout=10.0, clock=clock)
    srv.pool = _FakePool()
    from repro.server.state import JobSet

    jobset = JobSet(id="js-1", client="c", band=BAND_PTIME, band_detail="",
                    onto=ontology(PTIME_ONTO, name="w"), jobs=[],
                    payload={}, submitted=clock())
    jobset.status = RUNNING
    srv.store.add(jobset)
    srv._heartbeat = clock()
    clock.advance(5.0)
    assert srv.check_wedged() == 0  # within the window: no kill
    clock.advance(6.0)
    assert srv.check_wedged() == 2  # wedged: both workers killed
    assert srv.watchdog_pool_kills == 1
    assert all(p.killed for p in srv.pool._pool._processes.values())
    assert srv.check_wedged() == 0  # heartbeat reset: one kill per window
    clock.advance(11.0)
    jobset.status = DONE
    assert srv.check_wedged() == 0  # nothing running: never kill idle pools


def test_watchdog_noop_without_pool():
    srv = ReproServer(clock=FakeClock())
    assert srv.check_wedged() == 0


# -- journal + resume (in-process) --------------------------------------------


def test_daemon_journal_resume_reproduces_report(tmp_path, server):
    journal = str(tmp_path / "serve.jsonl")
    jobs = [{"query": "q(x) <- Finger(x)", "facts": [f"Thumb(t{i})"]}
            for i in range(3)]
    first = server(journal=journal)
    accepted = api(first, "POST", "/v1/jobsets",
                   {"ontology": PTIME_ONTO, "jobs": jobs})[1]
    original = wait_terminal(first, accepted["id"])
    first.stop()

    lines = [json.loads(l) for l in Path(journal).read_text().splitlines()]
    kinds = [r.get("kind") for r in lines]
    assert kinds[0] == "journal-header"
    assert kinds.count("jobset") == 1
    assert kinds.count("job-result") == 3

    second = server(journal=journal, resume=True)
    resumed = wait_terminal(second, accepted["id"])
    assert resumed["resumed"] is True
    assert (comparable_report(resumed["report"])
            == comparable_report(original["report"]))
    # Every job replayed from the journal, none recomputed.
    assert all(j.get("resumed") for j in resumed["report"]["jobs"])
    # Fresh submissions get ids past the resumed ones.
    fresh = api(second, "POST", "/v1/jobsets",
                {"ontology": PTIME_ONTO, "jobs": PTIME_JOBS})[1]
    assert fresh["id"] != accepted["id"]
    wait_terminal(second, fresh["id"])


def test_daemon_resume_skips_cancelled_jobsets(tmp_path, server):
    journal = str(tmp_path / "serve.jsonl")
    first = server(journal=journal, max_queued_jobs=10)
    gate = gate_dispatcher(first)
    running = api(first, "POST", "/v1/jobsets",
                  {"ontology": PTIME_ONTO, "jobs": PTIME_JOBS})[1]
    cancelled = api(first, "POST", "/v1/jobsets",
                    {"ontology": PTIME_ONTO, "jobs": PTIME_JOBS})[1]
    api(first, "DELETE", f"/v1/jobsets/{cancelled['id']}")
    gate.set()
    wait_terminal(first, running["id"])
    first.stop()

    second = server(journal=journal, resume=True)
    assert wait_terminal(second, running["id"])["status"] == DONE
    status, body, _ = api(second, "GET",
                          f"/v1/jobsets/{cancelled['id']}/result")
    assert status == 200 and body["status"] == CANCELLED


# -- real-signal subprocess end-to-end ----------------------------------------

REPO = Path(__file__).resolve().parent.parent
SRC = str(REPO / "src")

E2E_ONTOLOGY = (
    "forall x (x = x -> (Hand(x) -> exists y (hasFinger(x,y) & Thumb(y))))\n"
    "forall x,y (hasFinger(x,y) -> Digit(y))\n")


def e2e_workload(n_jobs=6, poison_at=3):
    entries = []
    for i in range(n_jobs):
        if i == poison_at:
            entries.append({"query": "q(y) <- Digit(y)", "id": "poison",
                            "facts": ["Hand(a)", "Hand(b)", "Hand(c)"]})
        else:
            entries.append({"query": "q(x) <- Hand(x)", "id": f"j{i}",
                            "facts": [f"Hand(h{i})"]})
    return entries


def serve_env(faults=None):
    env = dict(os.environ)
    for var in ("REPRO_FAULTS", "REPRO_BUDGET", "REPRO_TIMEOUT"):
        env.pop(var, None)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    if faults:
        env["REPRO_FAULTS"] = faults
    return env


def start_serve(args, faults=None):
    """Start ``repro serve`` and return (process, port)."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--fastpath", "off", *args],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=serve_env(faults), cwd=str(REPO))
    line = proc.stdout.readline()
    if "listening on" not in line:
        proc.kill()
        raise AssertionError(f"daemon never came up: {line!r} / "
                             f"{proc.stderr.read()[:2000]}")
    port = int(line.rsplit(":", 1)[1])
    return proc, port


def post_jobset(port, payload, timeout=30):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request("POST", "/v1/jobsets", json.dumps(payload),
                     {"Content-Type": "application/json"})
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read())
    finally:
        conn.close()


def get_json(port, path, timeout=30):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read())
    finally:
        conn.close()


def journal_records(path):
    return [json.loads(l) for l in Path(path).read_text().splitlines()
            if l.strip()]


def test_sigterm_drains_accepted_jobs_then_exits_zero(tmp_path):
    journal = str(tmp_path / "serve.jsonl")
    proc, port = start_serve(["--journal", journal])
    try:
        status, accepted = post_jobset(port, {
            "ontology": E2E_ONTOLOGY, "jobs": e2e_workload()})
        assert status == 202
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=120)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0, err
    assert "drained cleanly" in err
    # No accepted job was lost: all six results hit the journal before exit.
    records = journal_records(journal)
    results = [r for r in records if r.get("kind") == "job-result"
               and r.get("jobset") == accepted["id"]]
    assert len(results) == 6


def test_hard_kill_then_resume_serves_identical_report(tmp_path):
    """The daemon dies mid-batch (injected hard kill — same no-cleanup
    death as SIGKILL, but deterministic); restarted with --journal
    --resume it serves a report comparable_report-equal to an
    uninterrupted run's."""
    journal = str(tmp_path / "serve.jsonl")
    entries = e2e_workload()

    # Ground truth: the same workload, uninterrupted, in-process.
    onto = ontology(E2E_ONTOLOGY, name="e2e")
    reference = evaluate_batch(onto, jobs_from_entries(entries),
                               fastpath="off")

    proc, port = start_serve(["--journal", journal],
                             faults="kill:chase_truncate:@3")
    try:
        # The kill can fire before the 202 is even written (the dispatcher
        # races the response); the journaled jobset record is the durable
        # source of truth for the id either way.
        try:
            status, accepted = post_jobset(port, {
                "ontology": E2E_ONTOLOGY, "jobs": entries})
            assert status == 202
        except (http.client.HTTPException, ConnectionError, OSError):
            pass
        proc.wait(timeout=120)  # the injected kill fires mid-batch
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.communicate()
    from repro.runtime.faults import KILL_EXIT_CODE
    assert proc.returncode == KILL_EXIT_CODE

    records = journal_records(journal)
    submitted = [r for r in records if r.get("kind") == "jobset"]
    assert len(submitted) == 1
    accepted = {"id": submitted[0]["id"]}
    finished = [r for r in records if r.get("kind") == "job-result"]
    assert 1 <= len(finished) < 6, "expected a mid-batch death"

    proc, port = start_serve(["--journal", journal, "--resume"])
    try:
        deadline = time.monotonic() + 60
        body = None
        while time.monotonic() < deadline:
            status, body = get_json(
                port, f"/v1/jobsets/{accepted['id']}/result")
            if status == 200:
                break
            time.sleep(0.05)
        assert body is not None and body["status"] == DONE, body
        assert body["resumed"] is True
        assert (comparable_report(body["report"])
                == comparable_report(reference.to_dict()))
        replayed = [j for j in body["report"]["jobs"] if j.get("resumed")]
        assert len(replayed) == len(finished)
        proc.send_signal(signal.SIGTERM)
        proc.communicate(timeout=60)
        assert proc.returncode == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()


# -- the storage health probe (ISSUE 10, satellite 3) -------------------------


def test_healthz_without_backend_omits_storage(server):
    srv = server()
    assert srv.storage_health() is None
    status, body, _ = api(srv, "GET", "/healthz")
    assert status == 200 and "storage" not in body


def test_healthz_storage_ok_and_probe_leaves_no_trace(server, tmp_path):
    srv = server(cache_backend=f"sqlite:{tmp_path}/c.db")
    status, body, _ = api(srv, "GET", "/healthz")
    assert status == 200 and body["status"] == "ok"
    assert body["storage"] == "ok"
    backend = srv.answer_cache.backend
    assert backend.get(srv.PROBE_KEY) is None  # sentinel cleaned up
    _, text, _ = api(srv, "GET", "/metrics")
    assert "repro_storage_healthy 1" in text


def test_healthz_storage_degraded_on_bad_round_trip(
        server, tmp_path, monkeypatch):
    srv = server(cache_backend=f"shard:{tmp_path}/s?shards=4")
    backend = srv.answer_cache.backend
    # A backend that stores but reads back something else: the sentinel
    # round-trip must notice, and the daemon must stay up (degraded is a
    # report, not a failure).
    monkeypatch.setattr(backend, "get",
                        lambda key, default=None: {"verdict": "stale"})
    assert srv.storage_health() == "degraded"
    status, body, _ = api(srv, "GET", "/healthz")
    assert status == 200 and body["storage"] == "degraded"
    _, text, _ = api(srv, "GET", "/metrics")
    assert "repro_storage_healthy 0" in text


def test_healthz_storage_degraded_on_probe_error(
        server, tmp_path, monkeypatch):
    srv = server(cache_backend=f"sqlite:{tmp_path}/c.db")
    backend = srv.answer_cache.backend

    def boom(key, value):
        raise OSError("disk on fire")

    monkeypatch.setattr(backend, "put", boom)
    assert srv.storage_health() == "degraded"
    status, body, _ = api(srv, "GET", "/healthz")
    assert status == 200 and body["storage"] == "degraded"
