"""Batch evaluation: workload loading, determinism across worker counts,
budget splitting, and first-class failure (error / unknown / crash)."""

import json

import pytest

from repro.logic.ontology import ontology
from repro.runtime import Budget
from repro.serving import (
    Job, clear_caches, crash_result, evaluate_batch, load_workload,
)
from repro.serving import batch as batch_mod

HAND = ontology(
    "forall x (x = x -> (Hand(x) -> exists y (hasFinger(x,y) & Thumb(y))))\n"
    "forall x,y (hasFinger(x,y) -> Digit(y))")

QUERIES = [
    "q(x) <- hasFinger(x,y) & Thumb(y)",
    "q(y) <- Digit(y)",
    "q() <- Thumb(y)",
    "q(x) <- Hand(x)",
]


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


def hand_workload(n: int = 20) -> list[Job]:
    """*n* jobs cycling through four queries over small distinct instances."""
    jobs = []
    for i in range(n):
        facts = ["Hand(h%d)" % (i % 3), "Arm(a)"]
        if i % 5 == 0:
            facts.append("Hand(extra)")
        jobs.append(Job(query=QUERIES[i % len(QUERIES)],
                        facts=tuple(facts), job_id=f"j{i}"))
    return jobs


class TestLoadWorkload:
    def test_loads_jobs_with_facts_and_data(self, tmp_path):
        (tmp_path / "db.facts").write_text("Hand(h)\n# comment\nArm(a)\n")
        workload = [
            {"query": "q(x) <- Hand(x)", "data": "db.facts"},
            {"query": "q() <- Thumb(y)", "facts": ["Hand(h)"], "id": "named"},
        ]
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps(workload))
        jobs = load_workload(path)
        assert len(jobs) == 2
        assert jobs[0].data == str(tmp_path / "db.facts")  # resolved
        assert jobs[1].facts == ("Hand(h)",)
        assert jobs[1].job_id == "named"

    def test_missing_file_raises_value_error(self, tmp_path):
        with pytest.raises(ValueError):
            load_workload(tmp_path / "nope.json")

    def test_invalid_json_raises_value_error(self, tmp_path):
        path = tmp_path / "jobs.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="invalid JSON"):
            load_workload(path)

    def test_entry_needs_exactly_one_data_source(self, tmp_path):
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps(
            [{"query": "q() <- A(x)", "data": "d", "facts": ["A(a)"]}]))
        with pytest.raises(ValueError, match="exactly one"):
            load_workload(path)
        path.write_text(json.dumps([{"query": "q() <- A(x)"}]))
        with pytest.raises(ValueError, match="exactly one"):
            load_workload(path)

    def test_non_list_raises_value_error(self, tmp_path):
        path = tmp_path / "jobs.json"
        path.write_text("{}")
        with pytest.raises(ValueError, match="non-empty JSON list"):
            load_workload(path)


class TestSerialBatch:
    def test_report_shape_and_stats(self):
        report = evaluate_batch(HAND, hand_workload(8))
        assert len(report.results) == 8
        assert report.ok
        s = report.stats
        assert s["jobs"] == 8 and s["ok"] == 8
        assert s["distinct_queries"] == 4
        assert s["cache"]["hits"] + s["cache"]["misses"] == 8
        assert s["latency"]["count"] == 8
        assert "wall_seconds" in s
        assert s["conversion_cache"]["misses"] >= 1

    def test_repeated_instances_hit_the_answer_cache(self):
        jobs = [Job(query=QUERIES[0], facts=("Hand(h)",))] * 4
        report = evaluate_batch(HAND, jobs)
        assert report.stats["cache"]["hits"] == 3
        assert [r.answers for r in report.results] == [(("h",),)] * 4

    def test_results_keep_job_order(self):
        report = evaluate_batch(HAND, hand_workload(12))
        assert [r.index for r in report.results] == list(range(12))
        assert [r.job_id for r in report.results] == [
            f"j{i}" for i in range(12)]

    def test_missing_data_file_is_an_error_job(self, tmp_path):
        jobs = [Job(query=QUERIES[0], facts=("Hand(h)",)),
                Job(query=QUERIES[0], data=str(tmp_path / "gone.facts"))]
        report = evaluate_batch(HAND, jobs)
        assert report.results[0].status == "ok"
        assert report.results[1].status == "error"
        assert report.results[1].reason.startswith("data:")
        assert not report.ok
        assert report.stats["error"] == 1

    def test_malformed_query_is_an_error_job(self):
        jobs = [Job(query="this is not a query", facts=("Hand(h)",))]
        report = evaluate_batch(HAND, jobs)
        assert report.results[0].status == "error"
        assert report.results[0].reason.startswith("query:")

    def test_empty_workload(self):
        report = evaluate_batch(HAND, [])
        assert report.results == [] and report.ok
        assert report.stats["jobs"] == 0

    def test_render_text_summary_line(self):
        report = evaluate_batch(HAND, hand_workload(4))
        text = report.render_text()
        assert "batch: 4 job(s), 4 ok / 0 unknown / 0 error" in text
        assert text.count("\n") == 4  # one line per job + summary


class TestParallelBatch:
    def test_jobs1_equals_jobs2_on_20_job_workload(self):
        jobs = hand_workload(20)
        serial = evaluate_batch(HAND, jobs, workers=1)
        clear_caches()
        parallel = evaluate_batch(HAND, jobs, workers=2)
        assert serial.signatures() == parallel.signatures()
        assert parallel.stats["workers"] == 2
        assert parallel.ok

    def test_worker_crash_becomes_unknown_result(self, monkeypatch):
        # fork start method propagates the monkeypatch into workers
        def boom(payload):
            raise RuntimeError("induced crash")

        monkeypatch.setattr(batch_mod, "_run_job", boom)
        jobs = hand_workload(3)
        report = evaluate_batch(HAND, jobs, workers=2)
        assert len(report.results) == 3
        assert all(r.status == "unknown" for r in report.results)
        assert all("worker crashed" in r.reason for r in report.results)
        assert not report.ok
        assert report.stats["unknown"] == 3

    def test_serial_crash_becomes_unknown_result(self, monkeypatch):
        # workers=1 honors the same contract as the pool: an unexpected
        # crash takes down only its own job, never the batch.
        def boom(*args, **kwargs):
            raise RuntimeError("induced crash")

        monkeypatch.setattr(batch_mod, "_execute_job", boom)
        jobs = hand_workload(3)
        report = evaluate_batch(HAND, jobs, workers=1)
        assert len(report.results) == 3
        assert all(r.status == "unknown" for r in report.results)
        assert all("worker crashed" in r.reason for r in report.results)
        assert not report.ok

    def test_ctrl_c_aborts_the_batch(self, monkeypatch):
        # KeyboardInterrupt must propagate out of the pool-draining loop,
        # not drain into per-job "worker crashed" results.
        def interrupted(data):
            raise KeyboardInterrupt

        monkeypatch.setattr(batch_mod, "_result_from_dict", interrupted)
        with pytest.raises(KeyboardInterrupt):
            evaluate_batch(HAND, hand_workload(2), workers=2)

    def test_crash_result_unit(self):
        job = Job(query="q() <- A(x)", facts=("A(a)",), job_id="j0")
        r = crash_result(4, job, RuntimeError("boom"))
        assert r.index == 4 and r.status == "unknown"
        assert r.reason == "worker crashed: RuntimeError: boom"
        assert r.signature() == (4, "unknown", "unknown", ())


class TestBudgetedBatch:
    def test_budget_split_across_jobs(self):
        b = Budget(timeout=60, conflicts=90, escalate=True)
        parts = b.split(3)
        assert len(parts) == 3
        for part in parts:
            assert part.max_conflicts == 30
            assert part.escalate
            assert 0 < part.timeout <= 20.5
        with pytest.raises(ValueError):
            b.split(0)

    def test_split_floors_counters_at_one(self):
        parts = Budget(chase_steps=2).split(8)
        assert all(p.max_chase_steps == 1 for p in parts)

    def test_to_kwargs_round_trip(self):
        b = Budget(timeout=10, nulls=5, escalate=False)
        clone = Budget(**b.to_kwargs())
        assert clone.max_nulls == 5 and clone.escalate is False
        assert clone.timeout == pytest.approx(10, abs=1)

    def test_to_kwargs_carries_fault_plan(self, no_ambient_faults):
        from repro.runtime import FaultPlan, FaultSpec
        b = Budget(faults=FaultPlan([FaultSpec("deadline", at=2)]))
        clone = Budget(**b.to_kwargs())
        assert clone.faults is not None and clone.faults is not b.faults
        assert clone.faults.specs["deadline"].at == 2
        assert clone.faults.hits == {"deadline": 0}  # counters restart

    def test_serial_jobs_each_get_their_full_share(self, no_ambient_faults):
        # Child deadlines anchor when the job starts, so with workers=1
        # job k is not already expired by the time jobs 0..k-1 finish.
        jobs = hand_workload(6)
        report = evaluate_batch(HAND, jobs, workers=1,
                                budget=Budget(timeout=30, escalate=False))
        assert report.ok

    def test_programmatic_faults_survive_worker_boundary(
            self, no_ambient_faults):
        # A FaultPlan supplied in code (not via REPRO_FAULTS) must reach
        # pool workers, so --jobs 1 and --jobs N agree under injection.
        from repro.runtime import FaultPlan, FaultSpec
        jobs = hand_workload(4)

        def run(workers):
            clear_caches()
            budget = Budget(faults=FaultPlan([FaultSpec("deadline", at=1)]),
                            escalate=False)
            return evaluate_batch(HAND, jobs, workers=workers, budget=budget)

        serial, parallel = run(1), run(2)
        assert all(r.status == "unknown" for r in serial.results)
        assert serial.signatures() == parallel.signatures()

    def test_starved_batch_reports_unknown_not_wrong(self, no_ambient_faults):
        from repro.runtime import FaultPlan, FaultSpec
        jobs = hand_workload(4)
        budget = Budget(faults=FaultPlan([FaultSpec("deadline", at=1)]),
                        escalate=False)
        report = evaluate_batch(HAND, jobs, budget=budget)
        assert all(r.status == "unknown" for r in report.results)
        assert report.stats["unknown"] == 4
        assert not report.ok


class TestUnderFaultInjection:
    def test_workers_agree_under_chase_truncation(self, monkeypatch):
        import repro.runtime.faults as faults
        monkeypatch.setattr(faults, "_cache", None)
        monkeypatch.setenv("REPRO_FAULTS", "chase_truncate")
        jobs = hand_workload(6)
        serial = evaluate_batch(HAND, jobs, workers=1)
        clear_caches()
        parallel = evaluate_batch(HAND, jobs, workers=2)
        assert serial.signatures() == parallel.signatures()
        assert serial.ok and parallel.ok
