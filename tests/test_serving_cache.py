"""LRU / disk caches and the memoized ontology->rules conversion."""

import json

import pytest

from repro.logic.ontology import ontology
from repro.semantics.rules import render_rules
from repro.serving import (
    AnswerCache, DiskCache, LRUCache, clear_caches, conversion_cache_stats,
    convert_ontology_cached,
)
from repro.serving import cache as cache_mod

HORN = "forall x (x = x -> (Hand(x) -> exists y (hasFinger(x,y) & Thumb(y))))"
DISJ = "forall x (x = x -> (Coin(x) -> Heads(x) | Tails(x)))"


class TestLRUCache:
    def test_get_put_and_hit_accounting(self):
        c = LRUCache(maxsize=4)
        assert c.get("a") is None
        c.put("a", 1)
        assert c.get("a") == 1
        stats = c.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["size"] == 1

    def test_eviction_is_least_recently_used(self):
        c = LRUCache(maxsize=2)
        c.put("a", 1)
        c.put("b", 2)
        assert c.get("a") == 1  # refresh "a"; "b" is now the LRU entry
        c.put("c", 3)
        assert c.get("b") is None
        assert c.get("a") == 1 and c.get("c") == 3
        assert c.stats()["evictions"] == 1

    def test_put_existing_key_updates_in_place(self):
        c = LRUCache(maxsize=2)
        c.put("a", 1)
        c.put("a", 2)
        assert c.get("a") == 2
        assert c.stats()["size"] == 1

    def test_clear_resets_contents_and_counters(self):
        c = LRUCache(maxsize=2)
        c.put("a", 1)
        c.get("a")
        c.clear()
        assert c.get("a") is None
        assert c.stats()["hits"] == 0 and c.stats()["size"] == 0


class TestDiskCache:
    def test_round_trip(self, tmp_path):
        d = DiskCache(tmp_path / "cache")
        assert d.get("k1") is None
        d.put("k1", {"answers": [["h"]], "verdict": "ok"})
        assert d.get("k1") == {"answers": [["h"]], "verdict": "ok"}

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        d = DiskCache(tmp_path / "cache")
        d.put("k1", {"x": 1})
        [path] = list((tmp_path / "cache").iterdir())
        path.write_text("{not json", encoding="utf-8")
        assert d.get("k1") is None

    def test_entries_are_valid_json_files(self, tmp_path):
        d = DiskCache(tmp_path / "cache")
        d.put("k1", [1, 2, 3])
        [path] = list((tmp_path / "cache").iterdir())
        assert json.loads(path.read_text(encoding="utf-8")) == [1, 2, 3]

    def test_corrupt_entry_is_counted_and_evicted(self, tmp_path):
        d = DiskCache(tmp_path / "cache")
        d.put("k1", {"x": 1})
        [path] = list((tmp_path / "cache").iterdir())
        path.write_text('{"x": 1, "trunc', encoding="utf-8")  # torn write
        assert d.get("k1") is None
        assert d.read_errors == 1 and d.misses == 1
        assert not path.exists()  # evicted so it cannot keep failing
        # The slot is clean again: a rewrite round-trips.
        d.put("k1", {"x": 2})
        assert d.get("k1") == {"x": 2}
        assert d.stats()["read_errors"] == 1

    def test_plain_miss_is_not_a_read_error(self, tmp_path):
        d = DiskCache(tmp_path / "cache")
        assert d.get("absent") is None
        assert d.misses == 1 and d.read_errors == 0

    def test_write_failures_trip_the_circuit_breaker(self, tmp_path):
        d = DiskCache(tmp_path / "cache", max_consecutive_errors=3)
        unserializable = object()
        for _ in range(3):
            d.put("k", unserializable)  # TypeError inside json.dump
        assert d.write_errors == 3
        assert d.tripped and d.stats()["tripped"] is True
        # Tripped: the disk is never touched again this process.
        d.put("k2", {"ok": 1})
        assert list((tmp_path / "cache").glob("*.json")) == []
        assert d.get("k2") is None  # every get is a miss

    def test_successful_write_resets_the_error_streak(self, tmp_path):
        d = DiskCache(tmp_path / "cache", max_consecutive_errors=2)
        d.put("bad", object())
        d.put("good", {"ok": 1})  # streak broken
        d.put("bad", object())
        assert d.write_errors == 2 and not d.tripped

    def test_max_consecutive_errors_validated(self, tmp_path):
        with pytest.raises(ValueError):
            DiskCache(tmp_path / "cache", max_consecutive_errors=0)


class TestAnswerCache:
    def test_key_is_order_sensitive_composite(self):
        assert AnswerCache.key("a", "b") != AnswerCache.key("b", "a")
        assert AnswerCache.key("a", "b") == AnswerCache.key("a", "b")

    def test_memory_layer(self):
        c = AnswerCache(maxsize=8)
        k = AnswerCache.key("omq", "inst")
        assert c.get(k) is None
        c.put(k, {"verdict": "ok"})
        assert c.get(k) == {"verdict": "ok"}

    def test_disk_layer_backfills_memory(self, tmp_path):
        disk = DiskCache(tmp_path / "c")
        warm = AnswerCache(maxsize=8, disk=disk)
        k = AnswerCache.key("omq", "inst")
        warm.put(k, {"verdict": "ok"})
        # A fresh in-memory cache over the same directory sees the entry.
        cold = AnswerCache(maxsize=8, disk=DiskCache(tmp_path / "c"))
        assert cold.get(k) == {"verdict": "ok"}
        # ...and it is now resident in memory too.
        assert cold.memory.get(k) is not None


class TestConversionCache:
    def test_memoizes_per_ontology_content(self, monkeypatch):
        clear_caches()
        calls = []
        real = cache_mod.convert_ontology

        def counting(onto):
            calls.append(onto)
            return real(onto)

        monkeypatch.setattr(cache_mod, "convert_ontology", counting)
        a = ontology(HORN, name="first")
        b = ontology(HORN, name="second")  # same content, different name
        r1 = convert_ontology_cached(a)
        r2 = convert_ontology_cached(b)
        assert len(calls) == 1
        assert render_rules(r1) == render_rules(r2)
        stats = conversion_cache_stats()
        assert stats["hits"] >= 1

    def test_returns_fresh_list_copies(self):
        clear_caches()
        onto = ontology(DISJ)
        r1 = convert_ontology_cached(onto)
        r1.append("sentinel")
        r2 = convert_ontology_cached(onto)
        assert "sentinel" not in r2

    def test_none_verdict_is_cached(self, monkeypatch):
        clear_caches()
        # a universal quantifier in a positive disjunct cannot become a head
        onto = ontology(
            "forall x (x = x -> (A(x) | forall y (R(x,y) -> B(y))))")
        calls = []
        real = cache_mod.convert_ontology

        def counting(o):
            calls.append(o)
            return real(o)

        monkeypatch.setattr(cache_mod, "convert_ontology", counting)
        first = convert_ontology_cached(onto)
        second = convert_ontology_cached(onto)
        assert len(calls) == 1
        assert first is None and second is None

    def test_matches_direct_conversion(self):
        clear_caches()
        onto = ontology(HORN + "\n" + DISJ)
        cached = convert_ontology_cached(onto)
        direct = cache_mod.convert_ontology(onto)
        assert render_rules(cached) == render_rules(direct)
