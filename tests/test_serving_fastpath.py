"""The dichotomy-aware datalog fast path: gate decisions, ladder parity,
path accounting in EvalResult / BatchReport, and budget behaviour."""

import pytest

from repro.logic.instance import make_instance
from repro.logic.ontology import ontology
from repro.runtime import Budget
from repro.serving import Job, clear_caches, compile_omq, evaluate_batch

PROP = ontology("forall x,y (R(x,y) -> (A(x) -> A(y)))", name="prop")
PROP_Q = "q(x) <- A(x)"

DISJ = ontology(
    "forall x (x = x -> (A(x) -> ~B(x)))\n"
    "forall x,y (R(x,y) -> (A(x) -> A(y)))")

NON_HORN = ontology(
    "forall x (x = x -> (Coin(x) -> Heads(x) | Tails(x)))")

TRIVIAL = ontology("forall x (x = x -> A(x))")

DATA = make_instance("A(a)", "R(a,b)", "R(b,c)", "C(island)")


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestGate:
    def test_off_is_the_default(self):
        plan = compile_omq(PROP, PROP_Q)
        assert plan.plan_kind == "ladder"
        assert plan.program is None

    def test_auto_accepts_ptime_horn_omq(self):
        plan = compile_omq(PROP, PROP_Q, fastpath="auto")
        assert plan.plan_kind == "datalog-fastpath"
        assert plan.fastpath_reason == ""
        assert plan.program is not None
        assert plan.strata
        assert plan.program_report.admissible

    def test_force_accepts_too(self):
        plan = compile_omq(PROP, PROP_Q, fastpath="force")
        assert plan.plan_kind == "datalog-fastpath"

    def test_non_horn_refused_with_reason(self):
        plan = compile_omq(NON_HORN, "q(x) <- Heads(x)", fastpath="auto")
        assert plan.plan_kind == "ladder"
        assert "Horn" in plan.fastpath_reason

    def test_force_skips_the_static_ptime_proof(self):
        # "force" is the user's escape hatch: it bypasses the band/Horn
        # gate (the answers may over-approximate if the claim is wrong),
        # but the structural gates still apply.
        plan = compile_omq(NON_HORN, "q(x) <- Heads(x)", fastpath="force")
        assert plan.plan_kind == "datalog-fastpath"
        forced_boolean = compile_omq(NON_HORN, "q() <- Heads(x)",
                                     fastpath="force")
        assert forced_boolean.plan_kind == "ladder"

    def test_trivial_omq_refused(self):
        plan = compile_omq(TRIVIAL, "q(x) <- A(x)", fastpath="auto")
        assert plan.plan_kind == "ladder"
        assert "trivially-certain" in plan.fastpath_reason

    def test_boolean_query_refused(self):
        plan = compile_omq(PROP, "q() <- A(x)", fastpath="auto")
        assert plan.plan_kind == "ladder"
        assert plan.fastpath_reason

    def test_ucq_refused(self):
        plan = compile_omq(PROP, "q(x) <- A(x) ; q(x) <- B(x)",
                           fastpath="auto")
        assert plan.plan_kind == "ladder"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            compile_omq(PROP, PROP_Q, fastpath="yes-please")

    def test_memo_keys_separate_modes(self):
        ladder = compile_omq(PROP, PROP_Q)
        fast = compile_omq(PROP, PROP_Q, fastpath="auto")
        assert ladder is not fast
        assert compile_omq(PROP, PROP_Q, fastpath="auto") is fast

    def test_describe_reports_fastpath_facts(self):
        plan = compile_omq(PROP, PROP_Q, fastpath="auto")
        d = plan.describe()
        assert d["plan_kind"] == "datalog-fastpath"
        assert d["program_rules"] > 0
        assert d["program_strata"] >= 1
        refused = compile_omq(NON_HORN, "q(x) <- Heads(x)", fastpath="auto")
        assert refused.describe()["fastpath_reason"]


class TestLadderParity:
    """Satellite 3: fast-path answers must equal the escalation ladder's."""

    INSTANCES = [
        DATA,
        make_instance("A(a)"),
        make_instance("R(a,b)", "R(b,c)"),  # nothing certain
        make_instance("A(x)", "R(x,x)"),    # self-loop
        make_instance(),                     # empty instance
    ]

    def test_prop_answers_match_ladder(self):
        fast = compile_omq(PROP, PROP_Q, fastpath="auto")
        ladder = compile_omq(PROP, PROP_Q)
        assert fast.plan_kind == "datalog-fastpath"
        for D in self.INSTANCES:
            rf, rl = fast.evaluate(D), ladder.evaluate(D)
            assert rf.verdict == rl.verdict == "ok"
            assert set(rf.answers) == set(rl.answers), D
            assert rf.path == "fastpath" and rl.path == "ladder"
            assert rf.definitive and rl.definitive

    def test_fastpath_outcome_is_definitive_datalog(self):
        fast = compile_omq(PROP, PROP_Q, fastpath="auto")
        result = fast.evaluate(DATA)
        assert result.outcome["engine"] == "datalog"
        assert result.outcome["definitive"] is True
        assert "Theorem 5" in result.outcome["reason"]

    def test_inconsistent_instance_everything_certain(self):
        fast = compile_omq(DISJ, "q(x) <- A(x)", fastpath="auto")
        ladder = compile_omq(DISJ, "q(x) <- A(x)")
        assert fast.plan_kind == "datalog-fastpath"
        D = make_instance("A(a)", "B(a)", "C(z)")
        rf, rl = fast.evaluate(D), ladder.evaluate(D)
        assert set(rf.answers) == set(rl.answers) == {("a",), ("z",)}

    def test_result_to_dict_records_path(self):
        fast = compile_omq(PROP, PROP_Q, fastpath="auto")
        assert fast.evaluate(DATA).to_dict()["path"] == "fastpath"


class TestPathAccounting:
    def test_cache_hit_reports_cache_path(self):
        from repro.serving import AnswerCache

        plan = compile_omq(PROP, PROP_Q, fastpath="auto",
                           answer_cache=AnswerCache())
        assert plan.evaluate(DATA).path == "fastpath"
        assert plan.evaluate(DATA).path == "cache"

    def test_fastpath_metrics_counters(self):
        plan = compile_omq(PROP, PROP_Q, fastpath="auto")
        plan.evaluate(DATA)
        assert plan.metrics.counter("fastpath_evals").value == 1
        assert plan.metrics.counter("engine_datalog").value == 1

    def test_batch_counts_paths(self):
        jobs = [Job(query=PROP_Q, facts=("A(a)", "R(a,b)"), job_id="fast1"),
                Job(query=PROP_Q, facts=("A(a)", "R(a,b)"), job_id="repeat"),
                Job(query="q() <- A(x)", facts=("A(a)",), job_id="boolean")]
        report = evaluate_batch(PROP, jobs, fastpath="auto")
        paths = report.stats["paths"]
        assert paths.get("fastpath", 0) >= 1
        assert paths.get("ladder", 0) >= 1
        by_id = {r.job_id: r for r in report.results}
        assert by_id["fast1"].path == "fastpath"
        assert by_id["boolean"].path == "ladder"

    def test_batch_default_stays_on_ladder(self):
        jobs = [Job(query=PROP_Q, facts=("A(a)",), job_id="j0")]
        report = evaluate_batch(PROP, jobs)
        assert report.stats["paths"] == {"ladder": 1}

    def test_job_result_round_trips_path(self):
        from repro.serving.batch import _result_from_dict

        jobs = [Job(query=PROP_Q, facts=("A(a)",), job_id="j0")]
        report = evaluate_batch(PROP, jobs, fastpath="auto")
        r = report.results[0]
        clone = _result_from_dict(r.to_dict())
        assert clone.path == r.path == "fastpath"

    def test_legacy_result_dict_defaults_to_ladder(self):
        from repro.serving.batch import _result_from_dict

        jobs = [Job(query=PROP_Q, facts=("A(a)",), job_id="j0")]
        report = evaluate_batch(PROP, jobs)
        payload = report.results[0].to_dict()
        payload.pop("path")
        assert _result_from_dict(payload).path == "ladder"


class TestBudget:
    def test_starved_fastpath_returns_unknown(self):
        plan = compile_omq(PROP, PROP_Q, fastpath="auto")
        result = plan.evaluate(DATA, budget=Budget(timeout=0.0))
        assert result.verdict == "unknown"
        assert result.path == "fastpath"
        assert not result.definitive

    def test_generous_budget_unaffected(self):
        plan = compile_omq(PROP, PROP_Q, fastpath="auto")
        result = plan.evaluate(DATA, budget=Budget(timeout=60.0))
        assert result.verdict == "ok"
