"""Content-addressed fingerprints: stability and discrimination."""

from repro.logic.instance import make_instance
from repro.logic.ontology import ontology
from repro.queries.cq import parse_cq, parse_ucq
from repro.serving import (
    canonical_instance, canonical_ontology, canonical_query,
    fingerprint_instance, fingerprint_omq, fingerprint_ontology,
    fingerprint_query,
)

S1 = "forall x (x = x -> (Hand(x) -> exists y (hasFinger(x,y) & Thumb(y))))"
S2 = "forall x,y (hasFinger(x,y) -> Digit(y))"


class TestOntologyFingerprint:
    def test_sentence_order_washes_out(self):
        a = ontology(S1 + "\n" + S2)
        b = ontology(S2 + "\n" + S1)
        assert fingerprint_ontology(a) == fingerprint_ontology(b)

    def test_name_is_not_content(self):
        a = ontology(S1, name="alpha")
        b = ontology(S1, name="beta")
        assert fingerprint_ontology(a) == fingerprint_ontology(b)

    def test_functional_declarations_are_content(self):
        a = ontology(S2)
        b = ontology(S2, functional=["hasFinger"])
        assert fingerprint_ontology(a) != fingerprint_ontology(b)

    def test_different_sentences_differ(self):
        assert fingerprint_ontology(ontology(S1)) != \
            fingerprint_ontology(ontology(S2))

    def test_canonical_rendering_is_deterministic(self):
        a = ontology(S1 + "\n" + S2)
        assert canonical_ontology(a) == canonical_ontology(
            ontology(S2 + "\n" + S1))


class TestQueryFingerprint:
    def test_atom_order_washes_out(self):
        a = parse_cq("q(x) <- R(x,y) & A(y)")
        b = parse_cq("q(x) <- A(y) & R(x,y)")
        assert fingerprint_query(a) == fingerprint_query(b)

    def test_answer_vars_matter(self):
        a = parse_cq("q(x) <- R(x,y)")
        b = parse_cq("q(y) <- R(x,y)")
        assert fingerprint_query(a) != fingerprint_query(b)

    def test_ucq_disjunct_order_washes_out(self):
        a = parse_ucq("q(x) <- A(x) ; q(x) <- B(x)")
        b = parse_ucq("q(x) <- B(x) ; q(x) <- A(x)")
        assert fingerprint_query(a) == fingerprint_query(b)

    def test_cq_vs_ucq_with_same_single_disjunct(self):
        cq = parse_cq("q(x) <- A(x)")
        assert "q(x) <- A(x)" in canonical_query(cq)


class TestInstanceFingerprint:
    def test_insertion_order_washes_out(self):
        a = make_instance("R(a,b)", "A(c)")
        b = make_instance("A(c)", "R(a,b)")
        assert fingerprint_instance(a) == fingerprint_instance(b)
        assert canonical_instance(a) == canonical_instance(b)

    def test_extra_fact_differs(self):
        a = make_instance("R(a,b)")
        b = make_instance("R(a,b)", "R(b,a)")
        assert fingerprint_instance(a) != fingerprint_instance(b)


class TestOmqFingerprint:
    def test_combines_both_sides(self):
        onto_a, onto_b = ontology(S1), ontology(S2)
        q_a = parse_cq("q(x) <- Hand(x)")
        q_b = parse_cq("q(x) <- Digit(x)")
        fps = {fingerprint_omq(o, q)
               for o in (onto_a, onto_b) for q in (q_a, q_b)}
        assert len(fps) == 4
