"""Metrics, DiskCache write errors, memo metric isolation and thread
safety of the process-global serving caches."""

import threading

import pytest

from repro.logic.instance import make_instance
from repro.logic.ontology import ontology
from repro.serving import (
    AnswerCache, Counter, DiskCache, Gauge, Histogram, MetricsRegistry,
    clear_caches, compile_omq, convert_ontology_cached, prometheus_name,
    render_prometheus,
)
from repro.serving.plan import _plan_cache

ONTO = ontology(
    "forall x (Hand(x) -> exists y (hasFinger(x,y)))", name="hands")
QUERY = "q() <- hasFinger(x,y)"


# -- percentiles (nearest-rank, satellite bugfix) -----------------------------


def test_p50_of_four_is_the_second_ranked_value():
    hist = Histogram("h")
    for v in (4.0, 2.0, 3.0, 1.0):
        hist.observe(v)
    summary = hist.summary()
    # nearest-rank: ceil(0.5 * 4) = 2nd smallest, NOT the 3rd.
    assert summary["p50"] == 2.0
    assert summary["p95"] == 4.0  # ceil(0.95 * 4) = 4th


def test_p95_of_hundred_is_the_95th_ranked_value():
    hist = Histogram("h")
    hist.extend([float(i) for i in range(1, 101)])
    summary = hist.summary()
    assert summary["p95"] == 95.0  # ceil(0.95 * 100) = 95, not 96
    assert summary["p50"] == 50.0


def test_percentiles_of_singleton_and_pair():
    single = Histogram("s")
    single.observe(7.0)
    assert single.summary()["p50"] == 7.0
    assert single.summary()["p95"] == 7.0
    pair = Histogram("p")
    pair.extend([1.0, 9.0])
    assert pair.summary()["p50"] == 1.0  # ceil(0.5 * 2) = 1st
    assert pair.summary()["p95"] == 9.0


def test_empty_histogram_summary():
    assert Histogram("e").summary() == {"count": 0}


# -- registry merge and raw shipping ------------------------------------------


def test_registry_merge_sums_and_concatenates():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("hits").inc(2)
    b.counter("hits").inc(3)
    a.histogram("lat").observe(1.0)
    b.histogram("lat").extend([2.0, 3.0])
    a.merge(b)
    assert a.counter("hits").value == 5
    assert a.histogram("lat").summary()["count"] == 3


def test_to_raw_merge_raw_preserves_exact_observations():
    worker = MetricsRegistry()
    worker.counter("engine_chase").inc(4)
    worker.histogram("eval_seconds").extend([0.1, 0.2, 0.3, 0.4])
    driver = MetricsRegistry()
    driver.merge_raw(worker.to_raw())
    driver.merge_raw(worker.to_raw())
    assert driver.counter("engine_chase").value == 8
    summary = driver.histogram("eval_seconds").summary()
    assert summary["count"] == 8
    # Raw observations (not summaries) crossed the boundary: percentiles
    # over the merged population stay exact.
    assert summary["p50"] == 0.2


def test_counter_and_histogram_are_thread_safe():
    counter = Counter("c")
    hist = Histogram("h")

    def worker():
        for _ in range(1000):
            counter.inc()
            hist.observe(1.0)

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert counter.value == 8000
    assert hist.summary()["count"] == 8000


# -- gauges -------------------------------------------------------------------


def test_gauge_set_add_and_registry():
    gauge = Gauge("depth")
    gauge.set(5.0)
    gauge.add(2.0)
    gauge.add(-3.0)
    assert gauge.value == 4.0
    reg = MetricsRegistry()
    reg.gauge("g").set(7.0)
    assert reg.gauge("g") is reg.gauge("g")
    assert reg.to_dict()["g"] == 7.0


def test_gauge_merge_last_write_wins():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.gauge("depth").set(10.0)
    b.gauge("depth").set(3.0)
    a.merge(b)
    assert a.gauge("depth").value == 3.0  # point-in-time: other's reading
    a.counter("hits").inc(2)  # counters still sum
    b2 = MetricsRegistry()
    b2.merge_raw(a.to_raw())
    assert b2.gauge("depth").value == 3.0
    assert b2.counter("hits").value == 2


def test_gauge_is_thread_safe():
    gauge = Gauge("g")

    def worker():
        for _ in range(1000):
            gauge.add(1.0)

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert gauge.value == 8000.0


# -- Prometheus rendering -----------------------------------------------------


def test_prometheus_name_sanitizes():
    assert prometheus_name("server.jobs_completed", "repro_") == \
        "repro_server_jobs_completed"
    assert prometheus_name("bad-name with spaces") == "bad_name_with_spaces"
    assert prometheus_name("9lives") == "_9lives"
    assert prometheus_name("") == "_"


def test_render_prometheus_counters_gauges_summaries():
    reg = MetricsRegistry()
    reg.counter("server.requests").inc(3)
    reg.gauge("queue.depth").set(2.0)
    reg.histogram("job_seconds").extend([1.0, 2.0, 3.0, 4.0])
    text = render_prometheus(reg, extra_gauges={"uptime": 12.5})
    lines = text.splitlines()
    assert "# TYPE repro_server_requests counter" in lines
    assert "repro_server_requests 3" in lines
    assert "# TYPE repro_queue_depth gauge" in lines
    assert "repro_queue_depth 2" in lines  # integral floats drop the .0
    assert "# TYPE repro_uptime gauge" in lines
    assert "repro_uptime 12.5" in lines
    assert "# TYPE repro_job_seconds summary" in lines
    assert 'repro_job_seconds{quantile="0.5"} 2' in lines
    assert 'repro_job_seconds{quantile="0.95"} 4' in lines
    assert "repro_job_seconds_count 4" in lines
    assert "repro_job_seconds_sum 10" in lines
    assert text.endswith("\n")


def test_render_prometheus_empty_registry():
    assert render_prometheus(MetricsRegistry()) == "\n"


def test_render_prometheus_empty_histogram_has_no_quantiles():
    reg = MetricsRegistry()
    reg.histogram("idle")
    text = render_prometheus(reg)
    assert "repro_idle_count 0" in text
    assert "quantile" not in text


# -- DiskCache.put (satellite bugfix) -----------------------------------------


def test_disk_cache_put_survives_unserializable_value(tmp_path):
    cache = DiskCache(tmp_path)
    cache.put("bad", {"oops": object()})  # TypeError inside json.dump
    assert cache.write_errors == 1
    assert cache.stats()["write_errors"] == 1
    # The temp file was unlinked, not leaked into the cache directory.
    assert list(tmp_path.glob("*.tmp")) == []
    assert cache.stats()["entries"] == 0
    # The failed put behaves as a miss, and the cache still works.
    assert cache.get("bad") is None
    cache.put("good", {"v": 1})
    assert cache.get("good") == {"v": 1}
    assert cache.write_errors == 1


def test_disk_cache_put_survives_unwritable_directory(tmp_path):
    cache = DiskCache(tmp_path)
    cache.put("k", {"v": 1})
    import shutil
    shutil.rmtree(tmp_path)  # mkstemp now fails with OSError
    cache.put("k2", {"v": 2})
    assert cache.write_errors == 1


def test_answer_cache_swallows_disk_write_errors(tmp_path):
    cache = AnswerCache(disk=DiskCache(tmp_path))
    value = {"v": object()}
    cache.put("k", value)  # memory accepts it, disk cannot serialize it
    assert cache.get("k") == value
    assert cache.stats()["disk"]["write_errors"] == 1


# -- memo-hit metrics isolation (satellite bugfix) ----------------------------


def test_memo_hit_returns_fresh_metrics_registry():
    clear_caches()
    data = make_instance("Hand(h)")
    first = compile_omq(ONTO, QUERY)
    first.evaluate(data)
    assert first.metrics.counter("engine_chase").value == 1
    second = compile_omq(ONTO, QUERY)
    assert second is first  # memoized plan object
    # ... but the metrics registry is fresh: the previous caller's
    # observations must not leak into the new caller's report.
    assert second.metrics.counter("engine_chase").value == 0
    assert second.metrics.histogram("eval_seconds").summary() == {"count": 0}


def test_cache_hits_observe_their_own_histogram():
    clear_caches()
    data = make_instance("Hand(h)")
    plan = compile_omq(ONTO, QUERY, answer_cache=AnswerCache())
    plan.evaluate(data)  # miss: engine runs
    plan.evaluate(data)  # hit: lookup only
    stats = plan.stats()
    assert stats["answer_cache_hits"] == 1
    assert stats["eval_seconds"]["count"] == 1  # engine latency only
    assert stats["cache_hit_seconds"]["count"] == 1  # lookup latency apart


def test_reset_metrics_detaches_the_registry():
    clear_caches()
    plan = compile_omq(ONTO, QUERY)
    plan.evaluate(make_instance("Hand(h)"))
    snapshot = plan.reset_metrics()
    assert snapshot.counter("engine_chase").value == 1
    assert plan.metrics.counter("engine_chase").value == 0


# -- thread safety of the process-global caches (REPRO_SANITIZE=1) ------------


def test_concurrent_compile_and_clear_is_race_free():
    """Hammer the global plan/conversion caches from many threads while
    another clears them: no exception, no corrupted entry."""
    clear_caches()
    ontos = [
        ontology(f"forall x (A{i}(x) -> B{i}(x))", name=f"o{i}")
        for i in range(4)
    ]
    errors = []
    stop = threading.Event()

    def compiler(i):
        try:
            while not stop.is_set():
                plan = compile_omq(ontos[i % 4], f"q() <- B{i % 4}(x)")
                assert plan.onto is ontos[i % 4]
                convert_ontology_cached(ontos[i % 4])
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    def clearer():
        try:
            while not stop.is_set():
                clear_caches()
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=compiler, args=(i,)) for i in range(6)]
    threads.append(threading.Thread(target=clearer))
    for t in threads:
        t.start()
    import time
    time.sleep(0.5)
    stop.set()
    for t in threads:
        t.join()
    assert not errors


def test_plan_cache_lru_operations_are_locked():
    """Direct LRU hammering: concurrent get/put/clear/stats must keep the
    hit/miss accounting and the mapping itself consistent."""
    _plan_cache.clear()
    errors = []

    def worker(i):
        try:
            for j in range(500):
                _plan_cache.put(f"k{i}.{j % 10}", j)
                _plan_cache.get(f"k{(i + 1) % 8}.{j % 10}")
                _plan_cache.stats()
                len(_plan_cache)
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    stats = _plan_cache.stats()
    assert stats["hits"] + stats["misses"] == 8 * 500
    _plan_cache.clear()
