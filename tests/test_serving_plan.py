"""CompiledOMQ plans: compile-once semantics, answer caching, parity."""

import pytest

from repro.analysis import LintError
from repro.logic.instance import make_instance
from repro.logic.ontology import ontology
from repro.logic.syntax import Const
from repro.queries.cq import parse_cq
from repro.runtime import Budget, FaultPlan, FaultSpec
from repro.semantics.certain import CertainEngine
from repro.serving import (
    AnswerCache, clear_caches, compile_omq, parse_query, plan_cache_stats,
)

HAND = ontology(
    "forall x (x = x -> (Hand(x) -> exists y (hasFinger(x,y) & Thumb(y))))")
HAND_QUERY = "q(x) <- hasFinger(x,y) & Thumb(y)"
DATA = make_instance("Hand(h)", "Arm(a)")

NON_HORN = ontology(
    "forall x (x = x -> (Coin(x) -> Heads(x) | Tails(x)))")


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestParseQuery:
    def test_cq(self):
        q = parse_query("q(x) <- Hand(x)")
        assert q.arity == 1

    def test_ucq(self):
        q = parse_query("q(x) <- Heads(x) ; q(x) <- Tails(x)")
        assert len(q.disjuncts) == 2


class TestCompileMemo:
    def test_same_omq_returns_same_plan(self):
        p1 = compile_omq(HAND, HAND_QUERY)
        p2 = compile_omq(HAND, parse_cq(HAND_QUERY))
        assert p1 is p2
        assert plan_cache_stats()["hits"] == 1

    def test_different_options_get_different_plans(self):
        p1 = compile_omq(HAND, HAND_QUERY, chase_depth=6)
        p2 = compile_omq(HAND, HAND_QUERY, chase_depth=8)
        assert p1 is not p2

    def test_describe_reports_compiled_facts(self):
        plan = compile_omq(HAND, HAND_QUERY, classify=True)
        d = plan.describe()
        assert d["backend"] == "chase"
        assert d["rules"] == 1
        assert d["arity"] == 1
        assert d["band"] is not None
        assert d["fingerprint"] == plan.fingerprint

    def test_preflight_lint_rejects_broken_omq_at_compile_time(self):
        # OMQ012: answer variable without a body binding (error severity)
        with pytest.raises(LintError):
            compile_omq(HAND, "q(x) <- Hand(y)", preflight=True)


class TestEvaluate:
    def test_cold_then_warm_are_identical(self):
        plan = compile_omq(HAND, HAND_QUERY, answer_cache=AnswerCache())
        cold = plan.evaluate(DATA)
        warm = plan.evaluate(DATA)
        assert not cold.cache_hit and warm.cache_hit
        assert cold.verdict == warm.verdict == "ok"
        assert cold.answers == warm.answers
        assert cold.definitive and warm.definitive

    def test_answers_match_fresh_engine(self):
        plan = compile_omq(HAND, HAND_QUERY, answer_cache=AnswerCache())
        got = plan.evaluate(DATA).answers
        fresh = CertainEngine(HAND).certain_answers(DATA,
                                                    parse_cq(HAND_QUERY))
        expected = tuple(sorted(tuple(repr(e) for e in a) for a in fresh))
        assert got == expected
        assert got == (("h",),)

    def test_boolean_query_verdicts(self):
        plan = compile_omq(HAND, "q() <- Hand(x)",
                           answer_cache=AnswerCache())
        assert plan.evaluate(DATA).verdict == "yes"
        assert plan.evaluate(make_instance("Arm(a)")).verdict == "no"
        # both verdicts land in the cache
        assert plan.evaluate(DATA).cache_hit

    def test_entails_passthrough(self):
        plan = compile_omq(HAND, HAND_QUERY)
        assert plan.entails(DATA, (Const("h"),))
        assert not plan.entails(DATA, (Const("a"),))

    def test_evaluate_without_cache_still_works(self):
        plan = compile_omq(HAND, HAND_QUERY)
        r1, r2 = plan.evaluate(DATA), plan.evaluate(DATA)
        assert r1.answers == r2.answers
        assert not r1.cache_hit and not r2.cache_hit

    def test_memo_hit_without_cache_does_not_inherit_warm_cache(self):
        warm = compile_omq(HAND, HAND_QUERY, answer_cache=AnswerCache())
        assert warm.evaluate(DATA).cache_hit is False
        assert warm.evaluate(DATA).cache_hit is True
        # A caller asking for uncached evaluation (e.g. a cold benchmark)
        # must not silently get the previous caller's cached answers.
        cold = compile_omq(HAND, HAND_QUERY)
        assert cold is warm and cold.answer_cache is None
        assert cold.evaluate(DATA).cache_hit is False

    def test_metrics_accumulate(self):
        plan = compile_omq(HAND, HAND_QUERY, answer_cache=AnswerCache())
        plan.evaluate(DATA)
        plan.evaluate(DATA)
        stats = plan.stats()
        assert stats["answer_cache_misses"] == 1
        assert stats["answer_cache_hits"] == 1
        assert stats["answer_cache"]["memory"]["hits"] == 1
        assert stats["eval_seconds"]["count"] == 1  # only the engine run


class TestUnknownResults:
    def test_exhausted_budget_yields_unknown_and_is_not_cached(
            self, no_ambient_faults):
        cache = AnswerCache()
        plan = compile_omq(HAND, HAND_QUERY, answer_cache=cache)
        starved = Budget(faults=FaultPlan([FaultSpec("deadline", at=1)]),
                         escalate=False)
        out = plan.evaluate(DATA, budget=starved)
        assert out.verdict == "unknown"
        assert not out.definitive
        assert out.outcome["verdict"] == "unknown"
        assert "deadline" in out.outcome["reason"]
        assert len(cache.memory) == 0  # non-definitive: never cached
        # a healthy retry on the same plan now succeeds and caches
        retry = plan.evaluate(DATA)
        assert retry.verdict == "ok" and not retry.cache_hit
        assert plan.evaluate(DATA).cache_hit


class TestUnderFaultInjection:
    """Cold and cached runs agree even when the chase is being truncated."""

    def test_cold_vs_cached_identical_under_repro_faults(self, monkeypatch):
        import repro.runtime.faults as faults
        monkeypatch.setattr(faults, "_cache", None)
        monkeypatch.setenv("REPRO_FAULTS", "chase_truncate")
        plan = compile_omq(NON_HORN,
                           "q(x) <- Heads(x) ; q(x) <- Tails(x)",
                           answer_cache=AnswerCache())
        data = make_instance("Coin(c)")
        cold = plan.evaluate(data, budget=Budget(timeout=60))
        warm = plan.evaluate(data, budget=Budget(timeout=60))
        assert warm.cache_hit
        assert cold.verdict == warm.verdict == "ok"
        assert cold.answers == warm.answers == (("c",),)

    def test_budget_carried_fault_plan_converges(self, no_ambient_faults):
        plan = compile_omq(HAND, HAND_QUERY, answer_cache=AnswerCache())
        budget = Budget(timeout=60,
                        faults=FaultPlan([FaultSpec("chase_truncate")]))
        out = plan.evaluate(DATA, budget=budget)
        assert out.verdict == "ok"
        assert out.answers == (("h",),)
