"""Integration coverage for batch resilience: retry-with-escalation,
poison-job quarantine under real worker deaths (SIGKILL and ``kill:``
faults), and crash-safe journal/--resume round trips."""

import json
import os
import signal
import subprocess
import sys

import pytest

from repro.logic.ontology import ontology
from repro.resilience import RetryPolicy
from repro.runtime import KILL_EXIT_CODE, Budget, parse_faults
from repro.serving import (
    Job, clear_caches, comparable_report, evaluate_batch,
)
from repro.serving import batch as batch_mod

HAND = ontology(
    "forall x (x = x -> (Hand(x) -> exists y (hasFinger(x,y) & Thumb(y))))\n"
    "forall x,y (hasFinger(x,y) -> Digit(y))")

HAND_TEXT = (
    "forall x (x = x -> (Hand(x) -> exists y (hasFinger(x,y) & Thumb(y))))\n"
    "forall x,y (hasFinger(x,y) -> Digit(y))\n")

POISON = 1  # index the killing workers key on


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


def mixed_jobs(n: int = 4) -> list[Job]:
    """Index POISON chases into null creation; the others never do."""
    jobs = []
    for i in range(n):
        if i == POISON:
            jobs.append(Job(query="q(y) <- Digit(y)",
                            facts=("Hand(h)",), job_id="poison"))
        else:
            jobs.append(Job(query="q(x) <- Hand(x)",
                            facts=(f"Arm(a{i})",), job_id=f"innocent{i}"))
    return jobs


# Module-level so it pickles by reference into pool workers (the fork
# start method then resolves it against this already-imported module).
_REAL_RUN_JOB = batch_mod._run_job


def _sigkill_poison_run_job(payload):
    if payload[0] == POISON:
        os.kill(os.getpid(), signal.SIGKILL)
    return _REAL_RUN_JOB(payload)


class TestSerialRetry:
    def test_unknown_retried_under_escalated_budget(self, no_ambient_faults):
        # Attempt 1 starves on a split-sized budget; the retry's fresh
        # escalated allocation answers.  End to end, no monkeypatching.
        jobs = [Job(query="q(x) <- hasFinger(x,y) & Thumb(y)",
                    facts=("Hand(h1)", "Hand(h2)", "Hand(h3)"))]
        budget = Budget(nulls=2, chase_steps=2, conflicts=2, escalate=False)
        report = evaluate_batch(
            HAND, jobs, budget=budget,
            retry=RetryPolicy(max_attempts=4, backoff=0.0, escalation=16.0))
        r = report.results[0]
        assert r.status == "ok"
        assert [a["status"] for a in r.attempts] == ["unknown", "ok"]
        assert r.attempts[1]["escalation"] == 16.0
        assert report.stats["resilience"]["retries"] == 1

    def test_crash_on_first_attempt_then_success(self, monkeypatch):
        real = batch_mod._execute_job

        def flaky(index, job, onto, budget, options, cache):
            if index == POISON and options.get("attempt", 1) == 1:
                raise RuntimeError("transient poison")
            return real(index, job, onto, budget, options, cache)

        monkeypatch.setattr(batch_mod, "_execute_job", flaky)
        report = evaluate_batch(
            HAND, mixed_jobs(), retry=RetryPolicy(max_attempts=3,
                                                  backoff=0.0))
        r = report.results[POISON]
        assert r.status == "ok"
        assert [a["status"] for a in r.attempts] == ["crash", "ok"]
        assert "RuntimeError: transient poison" in r.attempts[0]["reason"]
        assert report.ok

    def test_persistent_crasher_is_quarantined_batch_continues(
            self, monkeypatch):
        real = batch_mod._execute_job

        def poison(index, job, onto, budget, options, cache):
            if index == POISON:
                raise RuntimeError("always dies")
            return real(index, job, onto, budget, options, cache)

        monkeypatch.setattr(batch_mod, "_execute_job", poison)
        report = evaluate_batch(
            HAND, mixed_jobs(),
            retry=RetryPolicy(max_attempts=5, max_crashes=2, backoff=0.0))
        r = report.results[POISON]
        assert r.status == "quarantined" and r.verdict == "unknown"
        assert r.reason == ("quarantined after 2 worker crash(es): "
                            "RuntimeError: always dies")
        assert len(r.attempts) == 2
        innocents = [x for x in report.results if x.index != POISON]
        assert all(x.status == "ok" for x in innocents)
        assert report.stats["quarantined"] == 1
        assert report.stats["resilience"]["quarantined"] == 1
        assert "1 quarantined" in report.render_text()

    def test_without_retry_policy_crash_keeps_legacy_shape(
            self, monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("induced crash")

        monkeypatch.setattr(batch_mod, "_execute_job", boom)
        report = evaluate_batch(HAND, mixed_jobs(2))
        assert all(r.status == "unknown" for r in report.results)
        assert all(r.reason == "worker crashed: RuntimeError: induced crash"
                   for r in report.results)
        assert all(r.attempts == () for r in report.results)  # no history


class TestPoolWorkerDeath:
    def test_sigkilled_worker_is_retried_then_quarantined(self, monkeypatch):
        monkeypatch.setattr(batch_mod, "_run_job", _sigkill_poison_run_job)
        report = evaluate_batch(
            HAND, mixed_jobs(4), workers=2,
            retry=RetryPolicy(max_attempts=5, max_crashes=2, backoff=0.0))
        r = report.results[POISON]
        assert r.status == "quarantined"
        assert len(r.attempts) == 2
        assert all(a["status"] == "crash" for a in r.attempts)
        innocents = [x for x in report.results if x.index != POISON]
        assert all(x.status == "ok" for x in innocents)
        pool_stats = report.stats["resilience"]["pool"]
        assert pool_stats["pool_deaths"] >= 1
        assert pool_stats["cautious"] is True
        assert pool_stats["degraded"] is False  # innocents kept succeeding

    def test_kill_fault_poisons_exactly_the_chasing_job(
            self, no_ambient_faults):
        # kill:chase_truncate fires only on null-creating chase firings;
        # only the POISON job ever chases into nulls, so only its workers
        # die — deterministically, attempt after attempt, until quarantine.
        budget = Budget(faults=parse_faults("kill:chase_truncate:@1"))
        report = evaluate_batch(
            HAND, mixed_jobs(4), workers=2, budget=budget,
            retry=RetryPolicy(max_attempts=5, max_crashes=2, backoff=0.0))
        r = report.results[POISON]
        assert r.status == "quarantined"
        innocents = [x for x in report.results if x.index != POISON]
        assert all(x.status == "ok" for x in innocents)
        assert report.stats["resilience"]["pool"]["pool_deaths"] >= 2

    def test_quarantine_signatures_match_across_worker_counts(
            self, monkeypatch):
        real = batch_mod._execute_job

        def serial_poison(index, job, onto, budget, options, cache):
            if index == POISON:
                raise RuntimeError("always dies")
            return real(index, job, onto, budget, options, cache)

        policy = RetryPolicy(max_attempts=5, max_crashes=2, backoff=0.0)
        monkeypatch.setattr(batch_mod, "_execute_job", serial_poison)
        serial = evaluate_batch(HAND, mixed_jobs(4), workers=1, retry=policy)
        clear_caches()
        monkeypatch.setattr(batch_mod, "_run_job", _sigkill_poison_run_job)
        parallel = evaluate_batch(HAND, mixed_jobs(4), workers=2,
                                  retry=policy)
        assert serial.signatures() == parallel.signatures()
        assert serial.comparable_dict() == parallel.comparable_dict()


class TestJournalResume:
    def test_resume_skips_journaled_jobs_and_merges(self, tmp_path):
        jobs = mixed_jobs(5)
        ref = evaluate_batch(HAND, jobs, journal=tmp_path / "ref.jsonl")
        # Simulate a batch killed after 2 finished jobs: keep the schema
        # header, the batch header and the first two result lines.
        lines = (tmp_path / "ref.jsonl").read_text().splitlines(True)
        partial = tmp_path / "partial.jsonl"
        partial.write_text("".join(lines[:4]))
        clear_caches()
        resumed = evaluate_batch(HAND, jobs, journal=partial, resume=True)
        assert resumed.comparable_dict() == ref.comparable_dict()
        assert sum(1 for r in resumed.results if r.resumed) == 2
        assert resumed.stats["resilience"]["resumed"] == 2
        assert "2 resumed from journal" in resumed.render_text()
        # The journal now holds the full batch: a second resume replays all.
        clear_caches()
        again = evaluate_batch(HAND, jobs, journal=partial, resume=True)
        assert all(r.resumed for r in again.results)
        assert again.comparable_dict() == ref.comparable_dict()

    def test_resume_tolerates_torn_tail(self, tmp_path):
        jobs = mixed_jobs(4)
        path = tmp_path / "j.jsonl"
        evaluate_batch(HAND, jobs, journal=path)
        lines = path.read_text().splitlines(True)
        # Keep the schema + batch headers + one full result, then a torn
        # half-record.
        path.write_text("".join(lines[:3]) + lines[3][: len(lines[3]) // 2])
        clear_caches()
        resumed = evaluate_batch(HAND, jobs, journal=path, resume=True)
        assert sum(1 for r in resumed.results if r.resumed) == 1
        assert resumed.ok

    def test_resume_rejects_foreign_ontology(self, tmp_path):
        other = ontology("forall x (Cat(x) -> Animal(x))")
        path = tmp_path / "j.jsonl"
        evaluate_batch(HAND, mixed_jobs(2), journal=path)
        with pytest.raises(ValueError, match="different ontology"):
            evaluate_batch(other, mixed_jobs(2), journal=path, resume=True)

    def test_journal_keys_are_content_addressed(self, tmp_path):
        # Same index, different job content: the journaled result must not
        # be replayed for the changed job.
        path = tmp_path / "j.jsonl"
        evaluate_batch(HAND, mixed_jobs(3), journal=path)
        changed = mixed_jobs(3)
        changed[2] = Job(query="q() <- Thumb(y)", facts=("Hand(zz)",),
                         job_id="new")
        clear_caches()
        resumed = evaluate_batch(HAND, changed, journal=path, resume=True)
        assert [r.resumed for r in resumed.results] == [True, True, False]
        assert resumed.ok

    def test_fresh_journal_truncates_stale_file(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"kind":"header","ontology":"stale"}\n')
        report = evaluate_batch(HAND, mixed_jobs(2), journal=path)
        assert report.ok
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["kind"] == "journal-header"
        batch_header = json.loads(lines[1])
        assert batch_header["ontology"] != "stale"


def _write_cli_fixtures(tmp_path, n_jobs=6, poison_at=3):
    """An ontology file and a workload whose *poison_at* job makes three
    null-creating chase firings (so ``kill:chase_truncate:@3`` kills
    exactly that job's process) while every other job makes at most one."""
    onto_path = tmp_path / "hand.gf"
    onto_path.write_text(HAND_TEXT)
    entries = []
    for i in range(n_jobs):
        if i == poison_at:
            entries.append({"query": "q(y) <- Digit(y)", "id": "poison",
                            "facts": ["Hand(a)", "Hand(b)", "Hand(c)"]})
        else:
            entries.append({"query": "q(x) <- Hand(x)", "id": f"j{i}",
                            "facts": [f"Hand(h{i})"]})
    workload = tmp_path / "jobs.json"
    workload.write_text(json.dumps(entries))
    return onto_path, workload


def _run_cli(args, tmp_path, faults=None):
    env = dict(os.environ)
    env.pop("REPRO_FAULTS", None)
    env.pop("REPRO_BUDGET", None)
    env.pop("REPRO_TIMEOUT", None)
    if faults:
        env["REPRO_FAULTS"] = faults
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", "batch", *args],
        capture_output=True, text=True, env=env, cwd=tmp_path, timeout=120)


class TestCrashResumeEndToEnd:
    """The acceptance scenario: a serial batch hard-killed mid-run by a
    ``kill:`` fault resumes from its journal and matches the fault-free
    run's comparable report."""

    def test_kill_fault_resume_round_trip(self, tmp_path):
        onto_path, workload = _write_cli_fixtures(tmp_path)
        budget = ["--budget", "nulls=600,chase_steps=600,conflicts=600"]
        common = [str(onto_path), "--workload", str(workload), *budget]

        reference = _run_cli([*common, "--format", "json"], tmp_path)
        assert reference.returncode == 0, reference.stderr
        ref_report = json.loads(reference.stdout)

        journal = tmp_path / "batch.jsonl"
        killed = _run_cli([*common, "--journal", str(journal)], tmp_path,
                          faults="kill:chase_truncate:@3")
        assert killed.returncode == KILL_EXIT_CODE
        assert "injected kill at fault site 'chase_truncate'" in killed.stderr
        records = [json.loads(line)
                   for line in journal.read_text().splitlines()]
        finished = [r for r in records if r.get("kind") == "result"]
        assert records[0]["kind"] == "journal-header"
        assert records[1]["kind"] == "header"
        assert 1 <= len(finished) < 6  # died mid-batch, progress persisted

        resumed = _run_cli(
            [*common, "--journal", str(journal), "--resume",
             "--format", "json"], tmp_path)
        assert resumed.returncode == 0, resumed.stderr
        res_report = json.loads(resumed.stdout)
        assert comparable_report(res_report) == comparable_report(ref_report)
        replayed = [j for j in res_report["jobs"] if j.get("resumed")]
        assert len(replayed) == len(finished)

    def test_resume_without_journal_is_an_input_error(self, tmp_path):
        onto_path, workload = _write_cli_fixtures(tmp_path, n_jobs=2,
                                                  poison_at=99)
        proc = _run_cli([str(onto_path), "--workload", str(workload),
                         "--resume"], tmp_path)
        assert proc.returncode == 2
        assert "--resume requires --journal" in proc.stderr

    def test_bad_retry_spec_is_an_input_error(self, tmp_path):
        onto_path, workload = _write_cli_fixtures(tmp_path, n_jobs=2,
                                                  poison_at=99)
        proc = _run_cli([str(onto_path), "--workload", str(workload),
                         "--retry", "lives=9"], tmp_path)
        assert proc.returncode == 2
        assert "unknown retry key" in proc.stderr
