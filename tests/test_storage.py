"""The storage subsystem: backend contract, URI resolution, and the
wiring through AnswerCache / compile_omq / evaluate_batch / ReproServer.

Concurrency (multi-process hammering, kill-mid-put) lives in
``test_storage_concurrency.py``; verdict-equality across backends in
``test_storage_property.py``.
"""

import json
import os
import sqlite3
import time

import pytest

from repro.logic.ontology import ontology
from repro.obs import Tracer
from repro.serving import AnswerCache, Job, clear_caches, evaluate_batch
from repro.serving.cache import DiskCache
from repro.serving.fingerprint import digest
from repro.serving.plan import compile_omq
from repro.storage import (
    DirectoryBackend,
    ShardedDirectoryBackend,
    SqliteBackend,
    StorageError,
    UnstorableValue,
    backend_exists,
    check_storable,
    default_backend_uri,
    open_backend,
    parse_backend_uri,
)

KEY = "ab" * 8  # 16 hex chars, like a real fingerprint
KEY2 = "cd" * 8
VALUE = {"verdict": "yes", "answers": [["a"]]}

BACKENDS = ["dir", "sqlite", "shard"]


def make_backend(kind, tmp_path, **kw):
    if kind == "dir":
        return DirectoryBackend(tmp_path / "d", **kw)
    if kind == "sqlite":
        return SqliteBackend(tmp_path / "c.db", **kw)
    return ShardedDirectoryBackend(tmp_path / "s", shards=8, **kw)


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


# -- URI resolution ----------------------------------------------------------


class TestUri:
    def test_schemes(self):
        assert parse_backend_uri("dir:/tmp/x") == ("dir", "/tmp/x", {})
        assert parse_backend_uri("sqlite:c.db?ttl=5") == (
            "sqlite", "c.db", {"ttl": "5"})
        assert parse_backend_uri("shard:/t?shards=4") == (
            "shard", "/t", {"shards": "4"})

    def test_bare_path_means_dir(self):
        # Every historical --cache-dir value is a valid URI.
        assert parse_backend_uri("/var/cache/repro") == (
            "dir", "/var/cache/repro", {})
        # Including relative paths with no scheme-looking prefix.
        assert parse_backend_uri("caches/warm")[0] == "dir"

    def test_empty_path_rejected(self):
        with pytest.raises(StorageError):
            parse_backend_uri("sqlite:")

    def test_unknown_scheme_rejected_not_treated_as_path(self):
        # A typo'd scheme must not silently become a directory named
        # after the typo.
        for bad in ("redis:nope", "sqllite:c.db", "postgres:db"):
            with pytest.raises(StorageError, match="unknown scheme"):
                parse_backend_uri(bad)
        # But genuinely path-looking strings still pass through.
        assert parse_backend_uri("C:\\cache")[0] == "dir"
        assert parse_backend_uri("/data/a:b/cache-with-very-long:colon")[0] \
            == "dir"

    def test_open_backend_dispatch(self, tmp_path):
        for uri, cls in ((f"dir:{tmp_path}/d", DirectoryBackend),
                         (f"sqlite:{tmp_path}/c.db", SqliteBackend),
                         (f"shard:{tmp_path}/s", ShardedDirectoryBackend)):
            with open_backend(uri) as backend:
                assert isinstance(backend, cls)

    def test_unknown_query_arg_rejected(self, tmp_path):
        with pytest.raises(StorageError, match="bogus"):
            open_backend(f"sqlite:{tmp_path}/c.db?bogus=1")

    def test_bad_numeric_arg_rejected(self, tmp_path):
        with pytest.raises(StorageError, match="shards"):
            open_backend(f"shard:{tmp_path}/s?shards=many")

    def test_unknown_arg_error_names_arg_and_accepted_set(self):
        with pytest.raises(StorageError) as exc:
            parse_backend_uri("sqlite:c.db?ttl=5&bogus=1")
        msg = str(exc.value)
        assert "'bogus'" in msg
        assert "max_bytes" in msg and "ttl" in msg  # the accepted set

    def test_unknown_arg_gets_a_spelling_hint(self):
        with pytest.raises(StorageError, match="did you mean 'shards'"):
            parse_backend_uri("shard:/t?shard=4")

    def test_dir_takes_no_arguments(self):
        with pytest.raises(StorageError, match="takes no arguments"):
            parse_backend_uri("dir:/tmp/x?ttl=5")

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_BACKEND", raising=False)
        assert default_backend_uri() is None
        monkeypatch.setenv("REPRO_CACHE_BACKEND", "sqlite:/tmp/x.db")
        assert default_backend_uri() == "sqlite:/tmp/x.db"


class TestBackendExists:
    """``backend_exists``: a read-only question that must never create
    the store it asks about (ISSUE 10, satellite 2)."""

    URIS = {"dir": "dir:{p}/d", "sqlite": "sqlite:{p}/c.db",
            "shard": "shard:{p}/s?shards=4"}

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_false_before_creation_no_side_effect(self, kind, tmp_path):
        uri = self.URIS[kind].format(p=tmp_path)
        assert backend_exists(uri) is False
        assert list(tmp_path.iterdir()) == []  # asking created nothing

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_true_after_creation(self, kind, tmp_path):
        uri = self.URIS[kind].format(p=tmp_path)
        with open_backend(uri) as backend:
            backend.put(KEY, VALUE)
        assert backend_exists(uri) is True

    def test_bad_uri_still_raises(self):
        with pytest.raises(StorageError):
            backend_exists("redis:nope")


# -- the backend contract, over all three implementations --------------------


@pytest.mark.parametrize("kind", BACKENDS)
class TestContract:
    def test_round_trip_and_miss(self, kind, tmp_path):
        with make_backend(kind, tmp_path) as backend:
            assert backend.get(KEY) is None
            backend.put(KEY, VALUE)
            assert backend.get(KEY) == VALUE

    def test_never_store_unknown(self, kind, tmp_path):
        with make_backend(kind, tmp_path) as backend:
            with pytest.raises(UnstorableValue):
                backend.put(KEY, {"verdict": "unknown", "reason": "starved"})
            assert backend.get(KEY) is None

    def test_delete(self, kind, tmp_path):
        with make_backend(kind, tmp_path) as backend:
            backend.put(KEY, VALUE)
            assert backend.delete(KEY) is True
            assert backend.delete(KEY) is False
            assert backend.get(KEY) is None

    def test_scan_and_stats(self, kind, tmp_path):
        with make_backend(kind, tmp_path) as backend:
            backend.put(KEY, VALUE)
            backend.put(KEY2, {"verdict": "no"})
            infos = list(backend.scan())
            assert [i.key for i in infos] == sorted([KEY, KEY2])
            assert all(i.size > 0 for i in infos)
            backend.get(KEY)
            backend.get("ef" * 8)  # miss
            stats = backend.stats()
            assert stats["backend"] == backend.scheme
            assert stats["entries"] == 2
            assert stats["hits"] == 1
            assert stats["misses"] == 1
            assert stats["tripped"] is False

    def test_verify_clean(self, kind, tmp_path):
        with make_backend(kind, tmp_path) as backend:
            backend.put(KEY, VALUE)
            assert backend.verify() == []

    def test_evict_older_than(self, kind, tmp_path):
        with make_backend(kind, tmp_path) as backend:
            backend.put(KEY, VALUE)
            assert backend.evict_older_than(3600) == 0
            assert backend.evict_older_than(0) == 1
            assert backend.get(KEY) is None

    def test_close_is_idempotent(self, kind, tmp_path):
        backend = make_backend(kind, tmp_path)
        backend.put(KEY, VALUE)
        backend.close()
        backend.close()


def test_check_storable_passes_definitive_and_plain_values():
    check_storable({"verdict": "yes"})
    check_storable({"verdict": "no"})
    check_storable([1, 2, 3])
    check_storable("text")
    with pytest.raises(UnstorableValue):
        check_storable({"verdict": "unknown"})


# -- DirectoryBackend: DiskCache semantics preserved -------------------------


class TestDirectoryBackend:
    def test_byte_compatible_with_disk_cache(self, tmp_path):
        # A directory populated by the pre-storage DiskCache is a valid
        # dir: backend, and vice versa.
        disk = DiskCache(tmp_path / "d")
        disk.put(KEY, VALUE)
        backend = DirectoryBackend(tmp_path / "d")
        assert backend.get(KEY) == VALUE
        backend.put(KEY2, {"verdict": "no"})
        assert DiskCache(tmp_path / "d").get(KEY2) == {"verdict": "no"}

    def test_corrupt_entry_evicted_and_counted(self, tmp_path):
        backend = DirectoryBackend(tmp_path / "d")
        backend.put(KEY, VALUE)
        (tmp_path / "d" / f"{KEY}.json").write_text("{not json")
        assert backend.get(KEY) is None
        assert backend.stats()["read_errors"] == 1
        assert not (tmp_path / "d" / f"{KEY}.json").exists()

    def test_verify_flags_unparseable_entry(self, tmp_path):
        backend = DirectoryBackend(tmp_path / "d")
        backend.put(KEY, VALUE)
        (tmp_path / "d" / f"{KEY2}.json").write_text("{truncated")
        assert backend.verify() == [KEY2]

    def test_circuit_breaker_surfaces_as_tripped(self, tmp_path):
        backend = DirectoryBackend(tmp_path / "d", max_consecutive_errors=2)
        assert backend.tripped is False
        backend._disk.tripped = True
        assert backend.tripped is True
        assert backend.stats()["tripped"] is True


# -- SqliteBackend -----------------------------------------------------------


class TestSqliteBackend:
    def test_ttl_expiry_reads_as_miss_and_reclaims(self, tmp_path):
        now = [1000.0]
        backend = SqliteBackend(tmp_path / "c.db", ttl=10,
                                clock=lambda: now[0])
        backend.put(KEY, VALUE)
        assert backend.get(KEY) == VALUE
        now[0] += 11
        assert backend.get(KEY) is None
        stats = backend.stats()
        assert stats["expired"] == 1
        assert stats["entries"] == 0  # reclaimed in place
        backend.close()

    def test_lru_eviction_under_size_budget(self, tmp_path):
        now = [0.0]
        backend = SqliteBackend(tmp_path / "c.db", max_bytes=400,
                                clock=lambda: now[0])
        keys = [f"{i:02d}" * 8 for i in range(8)]
        for key in keys:
            now[0] += 1
            backend.put(key, {"verdict": "yes", "pad": "x" * 50})
        stats = backend.stats()
        assert stats["total_bytes"] <= 400
        assert stats["evictions"] > 0
        # The most recently written key survives; the oldest went first.
        assert backend.get(keys[-1]) is not None
        assert backend.get(keys[0]) is None
        backend.close()

    def test_per_entry_hit_counters_persisted(self, tmp_path):
        backend = SqliteBackend(tmp_path / "c.db", flush_every=1)
        backend.put(KEY, VALUE)
        for _ in range(3):
            backend.get(KEY)
        (info,) = backend.scan()
        assert info.hits == 3
        backend.close()

    def test_lifetime_stats_survive_reopen(self, tmp_path):
        backend = SqliteBackend(tmp_path / "c.db")
        backend.put(KEY, VALUE)
        backend.get(KEY)
        backend.get(KEY2)  # miss
        backend.close()
        backend = SqliteBackend(tmp_path / "c.db")
        lifetime = backend.stats()["lifetime"]
        assert lifetime == {"hits": 1, "misses": 1, "puts": 1,
                            "evictions": 0, "expired": 0}
        backend.close()

    def test_verify_detects_tampered_row(self, tmp_path):
        backend = SqliteBackend(tmp_path / "c.db")
        backend.put(KEY, VALUE)
        backend.put(KEY2, {"verdict": "no"})
        backend.close()
        conn = sqlite3.connect(tmp_path / "c.db")
        conn.execute("UPDATE entries SET value = ? WHERE key = ?",
                     (json.dumps({"verdict": "no"}), KEY))
        conn.commit()
        conn.close()
        backend = SqliteBackend(tmp_path / "c.db")
        assert backend.verify() == [KEY]
        # The read path treats the same mismatch as a corrupt miss + evict.
        assert backend.get(KEY) is None
        assert backend.stats()["read_errors"] == 1
        assert backend.get(KEY2) == {"verdict": "no"}
        backend.close()

    def test_rejects_bad_budgets(self, tmp_path):
        with pytest.raises(ValueError):
            SqliteBackend(tmp_path / "c.db", max_bytes=0)
        with pytest.raises(ValueError):
            SqliteBackend(tmp_path / "c.db", ttl=-1)


# -- ShardedDirectoryBackend -------------------------------------------------


class TestShardedBackend:
    def test_entries_land_in_prefix_shards(self, tmp_path):
        backend = ShardedDirectoryBackend(tmp_path / "s", shards=8)
        keys = [digest(str(i)) for i in range(20)]
        for key in keys:
            backend.put(key, VALUE)
        for key in keys:
            expected = int(key[:8], 16) % 8
            path = tmp_path / "s" / f"{expected:02x}" / f"{key}.json"
            assert path.exists()
        assert sorted(i.key for i in backend.scan()) == sorted(keys)

    def test_shard_count_pinned_across_opens(self, tmp_path):
        ShardedDirectoryBackend(tmp_path / "s", shards=4)
        # No explicit count inherits the pinned one.
        assert ShardedDirectoryBackend(tmp_path / "s").shards == 4
        with pytest.raises(ValueError, match="sharded 4 ways"):
            ShardedDirectoryBackend(tmp_path / "s", shards=16)

    def test_misnamed_envelope_is_a_corrupt_miss(self, tmp_path):
        backend = ShardedDirectoryBackend(tmp_path / "s", shards=4)
        backend.put(KEY, VALUE)
        path = backend._path(KEY)
        # An entry copied under the wrong name: embedded key disagrees.
        entry = json.loads(path.read_text())
        entry["k"] = KEY2
        path.write_text(json.dumps(entry))
        assert backend.get(KEY) is None  # key mismatch -> corrupt miss
        assert backend.stats()["read_errors"] == 1
        assert not path.exists()  # evicted

    def test_verify_rehashes_tampered_value(self, tmp_path):
        # Bit rot that keeps the envelope parseable is invisible to the
        # hot read path (by design) but verify() re-hashes and flags it.
        backend = ShardedDirectoryBackend(tmp_path / "s", shards=4)
        backend.put(KEY, VALUE)
        path = backend._path(KEY)
        entry = json.loads(path.read_text())
        entry["v"] = {"verdict": "no"}
        path.write_text(json.dumps(entry))
        assert backend.verify() == [KEY]

    def test_verify_flags_misfiled_entry(self, tmp_path):
        backend = ShardedDirectoryBackend(tmp_path / "s", shards=4)
        backend.put(KEY, VALUE)
        src = backend._path(KEY)
        wrong = next(tmp_path / "s" / f"{i:02x}" for i in range(4)
                     if (tmp_path / "s" / f"{i:02x}") != src.parent)
        wrong.mkdir(exist_ok=True)
        src.rename(wrong / f"{KEY}.json")
        assert KEY in backend.verify()

    def test_breaker_trips_after_consecutive_write_failures(
            self, tmp_path, monkeypatch):
        backend = ShardedDirectoryBackend(tmp_path / "s", shards=2,
                                          max_consecutive_errors=2)

        def boom(*a, **k):
            raise OSError("disk on fire")

        monkeypatch.setattr(os, "replace", boom)
        backend.put(KEY, VALUE)
        assert backend.tripped is False
        backend.put(KEY2, VALUE)
        assert backend.tripped is True
        monkeypatch.undo()
        backend.put(KEY, VALUE)  # no-op once tripped
        assert backend.get(KEY) is None
        assert backend.stats()["write_errors"] == 2


# -- AnswerCache integration -------------------------------------------------


class TestAnswerCacheBackend:
    @pytest.mark.parametrize("kind", BACKENDS)
    def test_backend_behind_answer_cache(self, kind, tmp_path):
        backend = make_backend(kind, tmp_path)
        cache = AnswerCache(maxsize=2, backend=backend)
        assert cache.backend is backend
        cache.put(KEY, VALUE)
        # A fresh memory tier over the same backend still hits durably.
        warm = AnswerCache(backend=backend)
        assert warm.get(KEY) == VALUE
        backend.close()

    def test_storage_spans_traced(self, tmp_path):
        backend = DirectoryBackend(tmp_path / "d")
        cache = AnswerCache(backend=backend)
        tracer = Tracer()
        with tracer.activate():
            cache.put(KEY, VALUE)      # storage.put
            cache.get(KEY)             # memory hit: no storage span
            AnswerCache(backend=backend).get(KEY)   # storage.get (hit)
            AnswerCache(backend=backend).get(KEY2)  # storage.get (miss)
        names = [s["name"] for s in tracer.to_dicts()]
        assert names.count("storage.put") == 1
        assert names.count("storage.get") == 2
        gets = [s for s in tracer.to_dicts() if s["name"] == "storage.get"]
        assert [s["attrs"]["hit"] for s in gets] == [True, False]
        assert all(s["attrs"]["backend"] == "dir" for s in gets)

    def test_memory_only_cache_traces_nothing(self):
        cache = AnswerCache()
        tracer = Tracer()
        with tracer.activate():
            cache.put(KEY, VALUE)
            cache.get(KEY)
        assert tracer.to_dicts() == []


# -- compile_omq / evaluate_batch / server wiring ----------------------------


ONTO = ontology(
    "forall x (x = x -> (Hand(x) -> exists y (hasFinger(x,y) & Thumb(y))))\n"
    "forall x,y (hasFinger(x,y) -> Digit(y))")

JOBS = [Job(query="q(x) <- Hand(x)", facts=("Hand(h)", "Arm(a)"), job_id="a"),
        Job(query="q(y) <- Digit(y)", facts=("Hand(h)",), job_id="b")]


class TestServingWiring:
    def test_compile_omq_accepts_backend_uri(self, tmp_path):
        plan = compile_omq(ONTO, "q(x) <- Hand(x)",
                           answer_cache=f"sqlite:{tmp_path}/c.db")
        assert isinstance(plan.answer_cache, AnswerCache)
        assert plan.answer_cache.backend.scheme == "sqlite"
        plan.answer_cache.backend.close()

    @pytest.mark.parametrize("uri_kind", BACKENDS)
    def test_evaluate_batch_cache_backend(self, uri_kind, tmp_path):
        uri = {"dir": f"dir:{tmp_path}/d",
               "sqlite": f"sqlite:{tmp_path}/c.db",
               "shard": f"shard:{tmp_path}/s?shards=4"}[uri_kind]
        cold = evaluate_batch(ONTO, JOBS, cache_backend=uri)
        assert cold.stats["cache"]["hits"] == 0
        assert cold.stats["cache"]["backend"]["backend"] == uri_kind
        assert cold.stats["cache"]["tripped"] is False
        clear_caches()
        warm = evaluate_batch(ONTO, JOBS, cache_backend=uri)
        assert warm.stats["cache"]["hits"] == len(JOBS)
        assert warm.signatures() == cold.signatures()

    def test_cache_dir_and_backend_are_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            evaluate_batch(ONTO, JOBS, cache_dir=str(tmp_path / "d"),
                           cache_backend=f"dir:{tmp_path}/d")

    def test_cache_dir_still_works_via_dir_backend(self, tmp_path):
        report = evaluate_batch(ONTO, JOBS, cache_dir=str(tmp_path / "d"))
        assert report.stats["cache"]["backend"]["backend"] == "dir"
        assert (tmp_path / "d").is_dir()

    def test_tripped_flag_propagates_and_logs_once(self, tmp_path):
        backend = DirectoryBackend(tmp_path / "d")
        backend._disk.tripped = True  # a dead cache volume, pre-tripped
        cache = AnswerCache(backend=backend)
        tracer = Tracer()
        report = evaluate_batch(ONTO, JOBS, answer_cache=cache,
                                tracer=tracer)
        assert report.stats["cache"]["tripped"] is True
        breaker = [s for s in tracer.to_dicts()
                   if s["name"] == "storage.breaker"]
        assert len(breaker) == 1
        assert breaker[0]["attrs"]["tripped"] is True

    def test_untripped_batch_has_no_breaker_span(self, tmp_path):
        tracer = Tracer()
        report = evaluate_batch(ONTO, JOBS,
                                cache_backend=f"dir:{tmp_path}/d",
                                tracer=tracer)
        assert report.stats["cache"]["tripped"] is False
        assert not [s for s in tracer.to_dicts()
                    if s["name"] == "storage.breaker"]

    def test_sqlite_lifetime_stats_in_report(self, tmp_path):
        uri = f"sqlite:{tmp_path}/c.db"
        evaluate_batch(ONTO, JOBS, cache_backend=uri)
        clear_caches()
        warm = evaluate_batch(ONTO, JOBS, cache_backend=uri)
        lifetime = warm.stats["cache"]["backend"]["lifetime"]
        assert lifetime["puts"] == len(JOBS)
        assert lifetime["hits"] >= len(JOBS)


class TestServerWiring:
    def test_server_cache_backend_and_metrics(self, tmp_path):
        from repro.server import ReproServer

        server = ReproServer(cache_backend=f"sqlite:{tmp_path}/c.db")
        assert server.answer_cache.backend.scheme == "sqlite"
        server.answer_cache.put(KEY, VALUE)
        server.answer_cache.get(KEY2)  # durable miss
        text = server.render_metrics()
        assert "repro_storage_entries 1" in text
        assert "repro_storage_misses 1" in text
        assert "repro_storage_tripped 0" in text
        assert "repro_storage_lifetime_puts 1" in text
        server.answer_cache.backend.close()

    def test_server_rejects_both_cache_flavors(self, tmp_path):
        from repro.server import ReproServer

        with pytest.raises(ValueError, match="not both"):
            ReproServer(cache_dir=str(tmp_path / "d"),
                        cache_backend=f"dir:{tmp_path}/d")

    def test_server_without_backend_has_no_storage_gauges(self):
        from repro.server import ReproServer

        server = ReproServer()
        assert "repro_storage_" not in server.render_metrics()
