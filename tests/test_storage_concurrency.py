"""Multi-process contention over shared storage backends (ISSUE 8,
satellite 2).

N worker processes hammer one SqliteBackend / one ShardedDirectoryBackend
with mixed gets and puts; afterwards every surviving entry must verify
clean, sqlite's lifetime hit statistics must be monotone and consistent,
and a ``kill:``-faulted writer dying mid-put must not leave torn entries
behind.
"""

import json
import os
import sqlite3
import subprocess
import sys
from pathlib import Path

import pytest

from repro.runtime.faults import KILL_EXIT_CODE
from repro.serving.fingerprint import digest
from repro.storage import ShardedDirectoryBackend, SqliteBackend

SRC = str(Path(__file__).resolve().parent.parent / "src")

N_PROCS = 4
OPS_PER_PROC = 60

# Each worker performs a deterministic mix of puts and gets over a key
# space shared by all workers, so writes genuinely collide.
HAMMER = """
import json, sys
sys.path.insert(0, {src!r})
from repro.serving.fingerprint import digest
from repro.storage import open_backend

uri, seed, ops = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
hits = 0
with open_backend(uri) as backend:
    for i in range(ops):
        key = digest("shared-%d" % ((seed * 7 + i) % 17))
        if (seed + i) % 3 == 0:
            backend.put(key, {{"verdict": "yes", "writer": seed, "op": i,
                               "pad": "x" * 64}})
        else:
            value = backend.get(key)
            if value is not None:
                assert value["verdict"] == "yes", value
                hits += 1
print(hits)
"""


def _spawn(uri, seed, ops=OPS_PER_PROC, env=None):
    full_env = dict(os.environ)
    if env:
        full_env.update(env)
    return subprocess.Popen(
        [sys.executable, "-c", HAMMER.format(src=SRC), uri, str(seed),
         str(ops)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=full_env)


def _hammer(uri, n_procs=N_PROCS):
    procs = [_spawn(uri, seed) for seed in range(n_procs)]
    outs = []
    for proc in procs:
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err
        outs.append(int(out.strip()))
    return outs


class TestSqliteContention:
    def test_no_torn_entries_and_monotone_hits(self, tmp_path):
        uri = f"sqlite:{tmp_path}/shared.db"
        # Pre-populate so readers hit from the start.
        with SqliteBackend(tmp_path / "shared.db") as backend:
            for i in range(17):
                backend.put(digest("shared-%d" % i),
                            {"verdict": "yes", "writer": -1, "op": -1,
                             "pad": "x" * 64})
        hits = _hammer(uri)
        assert sum(hits) > 0  # contended readers actually hit

        backend = SqliteBackend(tmp_path / "shared.db")
        assert backend.verify() == []
        stats = backend.stats()
        assert stats["entries"] == 17  # fixed key space, nothing torn/lost
        lifetime = backend.stats()["lifetime"]
        # Every worker's session hits were flushed into the shared DB.
        assert lifetime["hits"] >= sum(hits)
        assert lifetime["puts"] >= 17
        # Per-entry counters are non-negative and sum below the aggregate
        # (aggregate also counts entries later overwritten).
        per_entry = sum(info.hits or 0 for info in backend.scan())
        assert 0 < per_entry <= lifetime["hits"]
        backend.close()

    def test_hit_stats_monotone_across_rounds(self, tmp_path):
        uri = f"sqlite:{tmp_path}/shared.db"
        with SqliteBackend(tmp_path / "shared.db") as backend:
            for i in range(17):
                backend.put(digest("shared-%d" % i), {"verdict": "yes"})

        def lifetime_hits():
            with SqliteBackend(tmp_path / "shared.db") as b:
                return b.stats()["lifetime"]["hits"]

        before = lifetime_hits()
        first = sum(_hammer(uri, n_procs=2))
        mid = lifetime_hits()
        second = sum(_hammer(uri, n_procs=2))
        after = lifetime_hits()
        assert before <= mid <= after
        assert mid >= before + first
        assert after >= mid + second


class TestShardedContention:
    def test_no_torn_entries_across_writers(self, tmp_path):
        uri = f"shard:{tmp_path}/shared?shards=8"
        ShardedDirectoryBackend(tmp_path / "shared", shards=8).put(
            digest("shared-0"), {"verdict": "yes", "writer": -1, "op": -1,
                                 "pad": "x" * 64})
        hits = _hammer(uri)
        assert sum(hits) > 0

        backend = ShardedDirectoryBackend(tmp_path / "shared")
        assert backend.shards == 8  # pinned count inherited
        assert backend.verify() == []
        keys = {info.key for info in backend.scan()}
        assert keys <= {digest("shared-%d" % i) for i in range(17)}
        # Every surviving value is one writer's complete payload.
        for key in keys:
            value = backend.get(key)
            if value is not None:
                assert set(value) == {"verdict", "writer", "op", "pad"}


class TestKillMidPut:
    """A writer dying mid-put (``kill:`` fault -> os._exit) must not
    corrupt the shared store: atomic rename / sqlite transactions mean
    later readers see either the old value or nothing."""

    KILLER = """
import sys
sys.path.insert(0, {src!r})
import os
from repro.serving.fingerprint import digest
from repro.storage import open_backend

uri = sys.argv[1]
backend = open_backend(uri)
real_replace = os.replace


def dying_replace(src, dst):
    os._exit({exit_code})


backend.put(digest("survivor"), {{"verdict": "yes", "n": 1}})
os.replace = dying_replace
backend.put(digest("victim"), {{"verdict": "yes", "n": 2}})
print("unreachable")
"""

    @pytest.mark.parametrize("kind", ["sqlite", "shard"])
    def test_kill_mid_put_leaves_store_clean(self, kind, tmp_path):
        if kind == "sqlite":
            uri = f"sqlite:{tmp_path}/c.db"
            code = (
                "import sys; sys.path.insert(0, %r)\n"
                "import os\n"
                "from repro.serving.fingerprint import digest\n"
                "from repro.storage import SqliteBackend\n"
                "b = SqliteBackend(%r)\n"
                "b.put(digest('survivor'), {'verdict': 'yes', 'n': 1})\n"
                "b._conn.execute('BEGIN IMMEDIATE')\n"
                "b._conn.execute(\n"
                "    'INSERT INTO entries VALUES (?,?,?,?,?,?,?)',\n"
                "    (digest('victim'), 'TORN{', 'junk', 5, 0, 0, 0))\n"
                "os._exit(%d)\n"
            ) % (SRC, str(tmp_path / "c.db"), KILL_EXIT_CODE)
        else:
            uri = f"shard:{tmp_path}/s?shards=4"
            code = self.KILLER.format(src=SRC, exit_code=KILL_EXIT_CODE)

        proc = subprocess.run(
            [sys.executable, "-c", code] + ([] if kind == "sqlite" else [uri]),
            capture_output=True, text=True, timeout=60)
        assert proc.returncode == KILL_EXIT_CODE
        assert "unreachable" not in proc.stdout

        from repro.storage import open_backend

        with open_backend(uri) as backend:
            assert backend.verify() == []
            assert backend.get(digest("survivor")) == {"verdict": "yes",
                                                       "n": 1}
            assert backend.get(digest("victim")) is None

    def test_stray_tmp_files_are_invisible(self, tmp_path):
        # A crash can strand a mkstemp temp file; it must not read as an
        # entry, and verify/scan must ignore it.
        backend = ShardedDirectoryBackend(tmp_path / "s", shards=4)
        key = digest("real")
        backend.put(key, {"verdict": "yes"})
        shard_dir = backend._path(key).parent
        (shard_dir / "tmp_abandoned").write_text('{"k": "torn')
        assert backend.verify() == []
        assert [i.key for i in backend.scan()] == [key]

    def test_sqlite_survives_hot_journal(self, tmp_path):
        # Simulate a crash that left WAL files behind: reopening must
        # recover and serve the committed entries.
        backend = SqliteBackend(tmp_path / "c.db")
        backend.put(digest("committed"), {"verdict": "yes"})
        backend._conn.execute("BEGIN IMMEDIATE")
        backend._conn.execute(
            "INSERT INTO entries VALUES (?,?,?,?,?,?,?)",
            (digest("uncommitted"), "{}", "junk", 2, 0, 0, 0))
        # Abandon without COMMIT (no close -> no flush/rollback either).
        del backend

        reopened = SqliteBackend(tmp_path / "c.db")
        assert reopened.get(digest("committed")) == {"verdict": "yes"}
        assert reopened.get(digest("uncommitted")) is None
        assert reopened.verify() == []
        reopened.close()


def test_sqlite_busy_timeout_is_set(tmp_path):
    backend = SqliteBackend(tmp_path / "c.db", busy_timeout=2.5)
    (timeout_ms,) = backend._conn.execute("PRAGMA busy_timeout").fetchone()
    assert timeout_ms == 2500
    (mode,) = backend._conn.execute("PRAGMA journal_mode").fetchone()
    assert mode == "wal"
    backend.close()


def test_sqlite_writer_retries_past_a_lock_holder(tmp_path):
    # One connection holds a write transaction briefly; the backend's
    # retry/busy-timeout loop must outlast it rather than raising.
    db = tmp_path / "c.db"
    backend = SqliteBackend(db)
    backend.put(digest("k0"), {"verdict": "yes"})

    blocker = sqlite3.connect(db, isolation_level=None,
                              check_same_thread=False)
    blocker.execute("PRAGMA busy_timeout=5000")
    blocker.execute("BEGIN IMMEDIATE")
    try:
        import threading

        def release():
            blocker.execute("COMMIT")

        timer = threading.Timer(0.3, release)
        timer.start()
        backend.put(digest("k1"), {"verdict": "yes"})  # must not raise
        timer.join()
    finally:
        blocker.close()
    assert backend.get(digest("k1")) == {"verdict": "yes"}
    backend.close()
