"""The ``storage:`` fault surface (ISSUE 10): deterministic EIO, torn
writes and transient contention injected at ``StorageBackend.get``/``put``
across all three backends, plus concurrent put-vs-eviction races run
*under* an injected fault schedule.

The faults come from the same ``REPRO_FAULTS`` plan as the solver
checkpoints, so these tests drive the process-wide plan through the
environment — exactly the path a chaos episode or a pool worker uses.
"""

import json
import threading

import pytest

import repro.runtime.faults as faults
from repro.runtime.faults import parse_faults
from repro.serving.fingerprint import digest
from repro.storage import (
    DirectoryBackend, ShardedDirectoryBackend, SqliteBackend,
)

VALUE = {"verdict": "yes", "answers": [["a"]], "pad": "x" * 64}

BACKENDS = ["dir", "sqlite", "shard"]


def make_backend(kind, tmp_path):
    if kind == "dir":
        return DirectoryBackend(tmp_path / "d")
    if kind == "sqlite":
        return SqliteBackend(tmp_path / "c.db")
    return ShardedDirectoryBackend(tmp_path / "s", shards=4)


@pytest.fixture(autouse=True)
def no_ambient_faults(monkeypatch):
    """Every test starts fault-free with a fresh plan cache (plans carry
    hit counters, so a cached plan would leak state between tests)."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.setattr(faults, "_cache", None)
    yield


def set_faults(monkeypatch, text):
    monkeypatch.setenv("REPRO_FAULTS", text)
    monkeypatch.setattr(faults, "_cache", None)


def clear_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.setattr(faults, "_cache", None)


class TestParsing:
    def test_storage_sites(self):
        plan = parse_faults("storage:get:0.5,storage:torn:@2")
        assert set(plan.storage) == {"get", "torn"}

    def test_unknown_storage_site_rejected(self):
        with pytest.raises(ValueError):
            parse_faults("storage:flub:0.5")

    def test_kill_storage_limited_to_ops(self):
        plan = parse_faults("kill:storage:put:@2")
        assert "storage:put" in plan.kills
        with pytest.raises(ValueError):
            parse_faults("kill:storage:torn:@2")

    def test_composes_with_solver_sites(self):
        plan = parse_faults("deadline:@1,storage:get,kill:chase_truncate:@3")
        assert plan.storage and plan.kills and plan.specs


@pytest.mark.parametrize("kind", BACKENDS)
class TestInjectedModes:
    def test_get_eio_returns_default_entry_survives(
            self, kind, tmp_path, monkeypatch):
        key = digest("k1")
        with make_backend(kind, tmp_path) as backend:
            backend.put(key, VALUE)
            set_faults(monkeypatch, "storage:get:@1")
            assert backend.get(key, "missing") == "missing"
            assert backend.injected.get("get") == 1
            # Only the read failed; the entry is intact afterwards.
            clear_faults(monkeypatch)
            assert backend.get(key) == VALUE

    def test_put_eio_drops_the_write(self, kind, tmp_path, monkeypatch):
        key = digest("k2")
        with make_backend(kind, tmp_path) as backend:
            set_faults(monkeypatch, "storage:put:@1")
            backend.put(key, VALUE)
            assert backend.injected.get("put") == 1
            clear_faults(monkeypatch)
            assert backend.get(key) is None

    def test_torn_write_lands_corrupt_and_heals(
            self, kind, tmp_path, monkeypatch):
        key = digest("k3")
        with make_backend(kind, tmp_path) as backend:
            set_faults(monkeypatch, "storage:torn:@1")
            backend.put(key, VALUE)
            assert backend.injected.get("torn") == 1
            clear_faults(monkeypatch)
            # The corruption is visible to verify(), the read path treats
            # it as a miss and evicts, after which verify() is clean.
            assert key in backend.verify()
            assert backend.get(key) is None
            assert backend.verify() == []

    def test_busy_is_absorbed(self, kind, tmp_path, monkeypatch):
        key = digest("k4")
        with make_backend(kind, tmp_path) as backend:
            set_faults(monkeypatch, "storage:busy")
            backend.put(key, VALUE)
            assert backend.get(key) == VALUE
            assert backend.injected.get("busy", 0) >= 2

    def test_eio_shadows_busy(self, kind, tmp_path, monkeypatch):
        key = digest("k5")
        with make_backend(kind, tmp_path) as backend:
            backend.put(key, VALUE)
            set_faults(monkeypatch, "storage:get,storage:busy")
            assert backend.get(key) is None
            # The stronger effect won; the backend notes only the mode it
            # actually applied.
            assert backend.injected == {"get": 1}

    def test_kill_on_put(self, kind, tmp_path, monkeypatch):
        killed = []

        def fake_kill(site):
            killed.append(site)
            raise RuntimeError("killed")

        monkeypatch.setattr(faults, "hard_kill", fake_kill)
        with make_backend(kind, tmp_path) as backend:
            set_faults(monkeypatch, "kill:storage:put:@2")
            backend.put(digest("k6"), VALUE)
            with pytest.raises(RuntimeError):
                backend.put(digest("k7"), VALUE)
        assert killed == ["storage:put"]


@pytest.mark.parametrize("kind", ["sqlite", "shard"])
class TestConcurrentEvictionUnderFaults:
    """Satellite 4: concurrent puts racing eviction while the fault plan
    injects contention and torn writes.  The backend must never raise,
    and once the schedule is lifted a read pass heals every survivor."""

    def test_put_vs_evict_race(self, kind, tmp_path, monkeypatch):
        set_faults(monkeypatch, "storage:busy:0.3,storage:torn:0.25")
        keys = [digest(f"race-{i}") for i in range(24)]
        errors = []
        stop = threading.Event()

        with make_backend(kind, tmp_path) as backend:
            def writer(seed):
                try:
                    for i in range(40):
                        backend.put(keys[(seed * 7 + i) % len(keys)], VALUE)
                        backend.get(keys[(seed + i) % len(keys)])
                except Exception as exc:  # noqa: BLE001 — the assertion
                    errors.append(exc)

            def evictor():
                try:
                    while not stop.is_set():
                        backend.evict_older_than(0.0)
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=writer, args=(s,))
                       for s in range(3)]
            ev = threading.Thread(target=evictor)
            for t in threads:
                t.start()
            ev.start()
            for t in threads:
                t.join(timeout=60)
            stop.set()
            ev.join(timeout=60)
            assert not errors, errors
            assert backend.injected.get("torn", 0) > 0
            assert backend.injected.get("busy", 0) > 0

            # Lift the schedule; a read pass over every key evicts any
            # surviving torn entry, after which the store verifies clean.
            clear_faults(monkeypatch)
            for key in keys:
                value = backend.get(key)
                assert value is None or value == VALUE
            assert backend.verify() == []
            stats = backend.stats()
            assert stats["entries"] == len(list(backend.scan()))

    def test_injected_counts_surface_in_stats(
            self, kind, tmp_path, monkeypatch):
        with make_backend(kind, tmp_path) as backend:
            set_faults(monkeypatch, "storage:put:@1")
            backend.put(digest("s1"), VALUE)
            stats = backend.stats()
            assert stats.get("injected", {}).get("put") == 1
            assert json.dumps(stats)  # stats stay JSON-serializable
