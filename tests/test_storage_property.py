"""Property: a storage backend is semantically invisible (ISSUE 8,
satellite 3).

For any backend behind the AnswerCache, ``evaluate_batch`` must produce
verdict-identical reports versus running with no cache at all — cold run,
warm run (same process), and shared run (fresh process-level caches over
the same durable store) all agree.  The same holds when jobs starve under
fault injection: UNKNOWN results are never persisted, so a starved run
cannot poison a later healthy one.
"""

import pytest

from repro.logic.ontology import ontology
from repro.runtime import Budget, FaultPlan, FaultSpec
from repro.serving import Job, clear_caches, evaluate_batch
from repro.storage import open_backend

HAND = ontology(
    "forall x (x = x -> (Hand(x) -> exists y (hasFinger(x,y) & Thumb(y))))\n"
    "forall x,y (hasFinger(x,y) -> Digit(y))")

QUERIES = [
    "q(x) <- hasFinger(x,y) & Thumb(y)",
    "q(y) <- Digit(y)",
    "q() <- Thumb(y)",
    "q(x) <- Hand(x)",
]


def hand_workload(n: int = 12) -> list[Job]:
    jobs = []
    for i in range(n):
        facts = ["Hand(h%d)" % (i % 3), "Arm(a)"]
        if i % 5 == 0:
            facts.append("Hand(extra)")
        jobs.append(Job(query=QUERIES[i % len(QUERIES)],
                        facts=tuple(facts), job_id=f"j{i}"))
    return jobs


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


def backend_uri(kind, tmp_path):
    return {None: None,
            "dir": f"dir:{tmp_path}/d",
            "sqlite": f"sqlite:{tmp_path}/c.db",
            "shard": f"shard:{tmp_path}/s?shards=4"}[kind]


@pytest.mark.parametrize("kind", ["dir", "sqlite", "shard"])
class TestBackendIsInvisible:
    def test_cold_warm_shared_all_match_uncached(self, kind, tmp_path):
        jobs = hand_workload()
        baseline = evaluate_batch(HAND, jobs)
        reference = baseline.signatures()
        uri = backend_uri(kind, tmp_path)

        clear_caches()
        cold = evaluate_batch(HAND, jobs, cache_backend=uri)
        assert cold.signatures() == reference
        assert cold.stats["cache"]["hits"] == 0

        # Warm: same process, same memory tier.
        warm = evaluate_batch(HAND, jobs, cache_backend=uri)
        assert warm.signatures() == reference

        # Shared: fresh memory tier, answers come from the durable store.
        clear_caches()
        shared = evaluate_batch(HAND, jobs, cache_backend=uri)
        assert shared.signatures() == reference
        assert shared.stats["cache"]["hits"] == len(jobs)

    def test_pooled_workers_share_the_backend(self, kind, tmp_path):
        jobs = hand_workload(8)
        uri = backend_uri(kind, tmp_path)
        baseline = evaluate_batch(HAND, jobs).signatures()

        clear_caches()
        evaluate_batch(HAND, jobs, workers=2, cache_backend=uri)
        clear_caches()
        warm = evaluate_batch(HAND, jobs, workers=2, cache_backend=uri)
        assert warm.signatures() == baseline
        assert warm.stats["cache"]["hits"] > 0


@pytest.mark.parametrize("kind", ["dir", "sqlite", "shard"])
class TestStarvationNeverPoisonsTheCache:
    def test_starved_run_stores_nothing(self, kind, tmp_path,
                                        no_ambient_faults):
        jobs = hand_workload(4)
        uri = backend_uri(kind, tmp_path)
        budget = Budget(faults=FaultPlan([FaultSpec("deadline", at=1)]),
                        escalate=False)
        starved = evaluate_batch(HAND, jobs, cache_backend=uri,
                                 budget=budget)
        assert all(r.status == "unknown" for r in starved.results)
        with open_backend(uri) as backend:
            assert list(backend.scan()) == []  # UNKNOWN never stored

    def test_healthy_run_after_starvation_matches_baseline(
            self, kind, tmp_path, no_ambient_faults):
        jobs = hand_workload(8)
        uri = backend_uri(kind, tmp_path)
        reference = evaluate_batch(HAND, jobs).signatures()

        clear_caches()
        budget = Budget(faults=FaultPlan([FaultSpec("deadline", at=1)]),
                        escalate=False)
        evaluate_batch(HAND, jobs, cache_backend=uri, budget=budget)

        clear_caches()
        healthy = evaluate_batch(HAND, jobs, cache_backend=uri)
        assert healthy.signatures() == reference
        assert healthy.stats["cache"]["hits"] == 0  # nothing was poisoned

    def test_env_fault_starvation_with_shared_store(self, kind, tmp_path,
                                                    monkeypatch):
        # Ambient REPRO_FAULTS (rate-1 deadline spec) starves every job;
        # the shared store must stay empty and usable afterwards.
        import repro.runtime.faults as faults

        jobs = hand_workload(4)
        uri = backend_uri(kind, tmp_path)
        monkeypatch.setenv("REPRO_FAULTS", "deadline")
        faults._cache = None
        try:
            starved = evaluate_batch(
                HAND, jobs, cache_backend=uri,
                budget=Budget(escalate=False))
        finally:
            monkeypatch.delenv("REPRO_FAULTS")
            faults._cache = None
        assert all(r.status == "unknown" for r in starved.results)

        clear_caches()
        healthy = evaluate_batch(HAND, jobs, cache_backend=uri)
        assert healthy.stats["cache"]["hits"] == 0
        assert all(r.status != "unknown" for r in healthy.results)


def test_resume_journal_coexists_with_shared_cache(tmp_path):
    # --resume replays finished jobs from the journal; unfinished ones
    # re-run and may hit the shared store. Signatures must match a
    # straight-through run either way.
    jobs = hand_workload(6)
    uri = f"sqlite:{tmp_path}/c.db"
    journal = tmp_path / "run.journal"
    reference = evaluate_batch(HAND, jobs).signatures()

    clear_caches()
    evaluate_batch(HAND, jobs[:3], cache_backend=uri, journal=journal)
    clear_caches()
    resumed = evaluate_batch(HAND, jobs, cache_backend=uri,
                             journal=journal, resume=True)
    assert resumed.signatures() == reference
    # The first three came from the journal, the rest were evaluated
    # fresh and persisted into the shared store.
    assert resumed.stats["resilience"]["resumed"] == 3
    assert resumed.stats["resilience"]["journal"]["appended"] == 3
    assert resumed.stats["cache"]["backend"]["lifetime"]["puts"] == len(jobs)
