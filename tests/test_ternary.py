"""Higher-arity coverage: uGF beyond two variables, end to end.

uGF permits guards of any arity; this suite drives ternary relations
through fragment analysis, rule conversion, the chase, SAT search, and the
materializability machinery.
"""

import pytest

from repro.core import Status, check_materializability, classify_ontology
from repro.core.materializability import MatStatus
from repro.guarded.fragments import fragment_name, profile_ontology
from repro.logic.instance import make_instance
from repro.logic.ontology import ontology
from repro.logic.syntax import Const
from repro.queries.cq import parse_cq
from repro.semantics.certain import CertainEngine
from repro.semantics.chase import chase
from repro.semantics.modelsearch import certain_answer

# bookings: a ternary relation guards three-way constraints
BOOKING = ontology(
    """
    forall x,y,z (Booking(x,y,z) -> Guest(x))
    forall x,y,z (Booking(x,y,z) -> exists u (AssignedKey(y,u)))
    forall x,y,z (Booking(x,y,z) -> (VIP(x) -> Suite(y)))
    """,
    name="booking")

D = make_instance("Booking(alice,room1,monday)", "VIP(alice)")


class TestFragmentAnalysis:
    def test_not_two_variable(self):
        profile = profile_ontology(BOOKING)
        assert not profile.two_variable
        assert profile.max_arity == 3

    def test_fragment_is_ugf1(self):
        assert fragment_name(BOOKING) == "uGF(1)"

    def test_classified_dichotomy_ptime(self):
        c = classify_ontology(BOOKING)
        assert c.band is Status.DICHOTOMY
        assert c.materializability.status is MatStatus.MATERIALIZABLE


class TestEvaluation:
    def test_chase_with_ternary_guard(self):
        result = chase(BOOKING, D)
        model = result.universal_model()
        assert parse_cq("q(x) <- Guest(x)").holds(model, (Const("alice"),))
        assert parse_cq("q(y) <- AssignedKey(y,u)").holds(
            model, (Const("room1"),))

    def test_vip_propagation(self):
        engine = CertainEngine(BOOKING)
        assert engine.entails(D, parse_cq("q(y) <- Suite(y)"),
                              (Const("room1"),))

    def test_sat_agrees_with_chase(self):
        for text, answer in [
            ("q(x) <- Guest(x)", ("alice",)),
            ("q(y) <- Suite(y)", ("room1",)),
            ("q(y) <- Suite(y)", ("monday",)),
        ]:
            query = parse_cq(text)
            tup = tuple(Const(n) for n in answer)
            via_sat = certain_answer(BOOKING, D, query, tup, extra=2).holds
            engine = CertainEngine(BOOKING)
            assert engine.entails(D, query, tup) == via_sat

    def test_ternary_query(self):
        engine = CertainEngine(BOOKING)
        q = parse_cq("q(x,y,z) <- Booking(x,y,z)")
        answers = engine.certain_answers(D, q)
        assert (Const("alice"), Const("room1"), Const("monday")) in answers


class TestTernaryDisjunction:
    def test_disjunctive_ternary_not_materializable(self):
        O = ontology(
            "forall x,y,z (Booking(x,y,z) -> (Smoking(y) | NonSmoking(y)))")
        room = make_instance("Booking(a,r,m)")
        report = check_materializability(
            O, max_elems=0, max_facts=0, extra_instances=[room])
        assert report.status is MatStatus.NOT_MATERIALIZABLE

    def test_guarded_set_structure(self):
        gs = D.maximal_guarded_sets()
        assert frozenset(
            [Const("alice"), Const("room1"), Const("monday")]) in gs

    def test_unravelling_with_ternary(self):
        from repro.guarded.unravel import unravel

        two = make_instance("Booking(a,r,m)", "Booking(b,r,m)")
        unravelled = unravel(two, depth=2)
        proj = unravelled.projection()
        for fact in unravelled.interpretation:
            image_args = tuple(proj[x] for x in fact.args)
            from repro.logic.syntax import Atom
            assert Atom(fact.pred, image_args) in two
