"""Tests for the tiling substrate and the Theorem-10 grid ontologies."""

import pytest

from repro.logic.instance import make_instance
from repro.logic.syntax import Atom, Const
from repro.tiling import (
    GridMarkerEngine, TilingProblem, block_problem, cell_closed,
    grid_element, grid_instance, grid_root, ocell_certain_marker,
    ocell_consistent, ocell_dl, op_dl, op_with_disjunction, stripes_problem,
    trivial_problem, unsolvable_problem, untiled_grid, xy_functional,
)

BLOCK = block_problem()


class TestTilingProblems:
    def test_block_tiles_2x2(self):
        tiling = BLOCK._tile_rectangle(2, 2)
        assert tiling is not None
        assert BLOCK.is_valid_tiling(tiling)

    def test_block_tiles_any_rectangle(self):
        for n, m in [(1, 1), (3, 1), (1, 3), (2, 3)]:
            tiling = BLOCK._tile_rectangle(n, m)
            assert tiling is not None and BLOCK.is_valid_tiling(tiling)

    def test_unsolvable_has_no_tiling(self):
        assert unsolvable_problem().find_tiling(3, 3) is None

    def test_trivial_problem_1x1_only(self):
        t = trivial_problem().find_tiling(2, 2)
        assert t == {(0, 0): "T0"}

    def test_stripes_single_row(self):
        P = stripes_problem()
        t = P.find_tiling(4, 2)
        assert t is not None
        assert max(j for _, j in t) == 0  # only rows

    def test_initial_tile_only_at_corner(self):
        bad = {(0, 0): "I", (1, 0): "I", (2, 0): "F"}
        P = TilingProblem(("I", "F"), [("I", "I"), ("I", "F")],
                          [("I", "I")], "I", "F")
        assert not P.is_valid_tiling(bad)

    def test_unknown_tile_rejected(self):
        with pytest.raises(ValueError):
            TilingProblem(("A",), [], [], "A", "Z")


class TestGridInstances:
    def setup_method(self):
        self.tiling = BLOCK._tile_rectangle(2, 2)
        self.grid = grid_instance(self.tiling)

    def test_xy_functional(self):
        assert xy_functional(self.grid)

    def test_cell_closed_inside(self):
        assert cell_closed(self.grid, grid_element(0, 0))
        assert cell_closed(self.grid, grid_element(1, 1))

    def test_cell_not_closed_at_border(self):
        assert not cell_closed(self.grid, grid_element(2, 2))
        assert not cell_closed(self.grid, grid_element(2, 0))

    def test_grid_root_at_corner_only(self):
        assert grid_root(self.grid, grid_element(0, 0), BLOCK)
        assert not grid_root(self.grid, grid_element(1, 0), BLOCK)

    def test_grid_root_fails_with_missing_edge(self):
        broken = self.grid.copy()
        broken.discard(Atom("Y", (grid_element(1, 0), grid_element(1, 1))))
        assert not grid_root(broken, grid_element(0, 0), BLOCK)

    def test_grid_root_fails_with_bad_tiling(self):
        wrong = self.grid.copy()
        wrong.discard(Atom("M", (grid_element(1, 1),)))
        wrong.add(Atom("I", (grid_element(1, 1),)))
        assert not grid_root(wrong, grid_element(0, 0), BLOCK)

    def test_grid_root_fails_with_extra_edge(self):
        leaky = self.grid.copy()
        leaky.add(Atom("X", (grid_element(2, 0), Const("outside"))))
        assert not grid_root(leaky, grid_element(0, 0), BLOCK)

    def test_untiled_grid_shape(self):
        g = untiled_grid(2, 1)
        assert len(g.tuples("X")) == 4
        assert len(g.tuples("Y")) == 3


class TestOcellSemantics:
    def test_nonfunctional_is_inconsistent(self):
        D = make_instance("X(a,b)", "X(a,c)")
        assert not ocell_consistent(D)
        # inverse functionality too
        D2 = make_instance("X(a,c)", "X(b,c)")
        assert not ocell_consistent(D2)

    def test_plain_grid_is_consistent(self):
        grid = grid_instance(BLOCK._tile_rectangle(2, 2))
        assert ocell_consistent(grid)

    def test_marker_certain_iff_cell_closed(self):
        grid = grid_instance(BLOCK._tile_rectangle(2, 2))
        assert ocell_certain_marker(grid, grid_element(0, 0))
        assert not ocell_certain_marker(grid, grid_element(2, 2))

    def test_marker_certain_on_inconsistent_instance(self):
        D = make_instance("X(a,b)", "X(a,c)")
        assert ocell_certain_marker(D, Const("a"))

    def test_preset_p_successors_at_closed_cell(self):
        D = make_instance("X(a,b)", "Y(b,d)", "Y(a,c)", "X(c,d)",
                          "P(a,p1)", "P(a,p2)")
        assert not ocell_consistent(D)

    def test_forced_marker_conflict(self):
        # both R1 and R2 preset with two successors: no marker available
        D = make_instance("A(a)", "R1(a,u)", "R1(a,v)", "R2(a,u)", "R2(a,v)")
        assert not ocell_consistent(D)

    def test_single_forced_marker_is_fine(self):
        D = make_instance("A(a)", "R1(a,u)", "R1(a,v)")
        assert ocell_consistent(D)


class TestGridMarkerEngine:
    def setup_method(self):
        self.engine = GridMarkerEngine(BLOCK)
        self.grid = grid_instance(BLOCK._tile_rectangle(2, 2))

    def test_certain_a_at_root(self):
        assert self.engine.certain_a(self.grid, grid_element(0, 0))

    def test_not_certain_elsewhere(self):
        assert not self.engine.certain_a(self.grid, grid_element(1, 1))

    def test_defective_grid_not_certain(self):
        broken = self.grid.copy()
        broken.discard(Atom("Y", (grid_element(1, 0), grid_element(1, 1))))
        assert not self.engine.certain_a(broken, grid_element(0, 0))

    def test_double_label_inconsistent(self):
        bad = self.grid.copy()
        bad.add(Atom("I", (grid_element(1, 1),)))
        assert not self.engine.consistent(bad)
        assert self.engine.certain_a(bad, grid_element(1, 1))

    def test_disjunction_witness_lemma13(self):
        """P admits a tiling => the tiled grid witnesses the B1/B2
        disjunction at the corner (non-materializability, Lemma 13)."""
        assert self.engine.corner_disjunction_witness(
            self.grid, grid_element(0, 0))
        assert not self.engine.corner_disjunction_witness(
            self.grid, grid_element(1, 1))


class TestDLConstructions:
    def test_ocell_lands_in_no_dichotomy_fragment(self):
        tbox = ocell_dl()
        assert tbox.dl_name() == "ALCIF_l"
        assert tbox.depth() == 2

    def test_op_extends_ocell(self):
        tbox = op_dl(BLOCK)
        assert len(tbox.axioms) > len(ocell_dl().axioms)
        assert tbox.depth() == 2

    def test_op_with_disjunction_adds_axiom(self):
        base = op_dl(BLOCK)
        extended = op_with_disjunction(BLOCK)
        assert len(extended.axioms) == len(base.axioms) + 1

    def test_figure1_classification(self):
        from repro.core.dichotomy import Status, classify_dl
        tbox = ocell_dl()
        _, band = classify_dl(tbox.dl_name(), tbox.depth())
        assert band is Status.NO_DICHOTOMY
