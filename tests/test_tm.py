"""Tests for the Turing machine substrate and the run fitting problem."""

import pytest

from repro.tm import (
    BLANK, Configuration, HFunction, PaddedLanguage, PartialRun, TM,
    Transition, accepts, all_strings, blank_partial_run, fits,
    initial_configuration, matches, run_is_valid, successors,
    trivial_deciders, verify_certificate,
)


def flip_machine() -> TM:
    """Scans right flipping 0<->1, accepts at the first blank.

    Single-character state names: S = start, A = accept.
    """
    return TM(
        states={"S", "A"},
        alphabet={"0", "1"},
        transitions=[
            Transition("S", "0", "S", "1", "R"),
            Transition("S", "1", "S", "0", "R"),
            Transition("S", BLANK, "A", BLANK, "R"),
        ],
        start="S",
        accept="A",
    )


def guessing_machine() -> TM:
    """Non-deterministically rewrites 0s to 0/1, accepts on blank."""
    return TM(
        states={"S", "A"},
        alphabet={"0", "1"},
        transitions=[
            Transition("S", "0", "S", "0", "R"),
            Transition("S", "0", "S", "1", "R"),
            Transition("S", "1", "S", "1", "R"),
            Transition("S", BLANK, "A", BLANK, "R"),
        ],
        start="S",
        accept="A",
    )


class TestMachine:
    def test_accepting_state_closed(self):
        with pytest.raises(ValueError):
            TM({"q", "A"}, {"0"},
               [Transition("A", "0", "q", "0", "R")], "q", "A")

    def test_initial_configuration(self):
        tm = flip_machine()
        config = initial_configuration(tm, "01", space=5)
        assert config.as_string() == "S01" + BLANK * 2

    def test_configuration_length_counts_state_once(self):
        config = Configuration(("0",), "S", ("1",))
        assert config.length == 3
        assert config.symbols() == ("0", "S", "1")

    def test_successors_move_right(self):
        tm = flip_machine()
        config = initial_configuration(tm, "01", space=5)
        (succ,) = successors(tm, config)
        assert succ.as_string() == "1S1" + BLANK * 2

    def test_successors_respect_space(self):
        tm = flip_machine()
        config = Configuration(("1", "1", "1"), "S", ("0",))
        assert successors(tm, config) == []  # would fall off

    def test_successors_preserve_length(self):
        tm = flip_machine()
        config = initial_configuration(tm, "01", space=5)
        for succ in successors(tm, config):
            assert succ.length == config.length

    def test_accepts(self):
        tm = flip_machine()
        assert accepts(tm, "0101", max_steps=6)

    def test_run_validity(self):
        tm = flip_machine()
        start = initial_configuration(tm, "0", space=4)
        (mid,) = successors(tm, start)
        (end,) = successors(tm, mid)
        assert run_is_valid(tm, [start, mid, end])
        assert not run_is_valid(tm, [start, end])


class TestRunFitting:
    def test_blank_partial_run_fits(self):
        tm = flip_machine()
        # width 5 = input 2 + state + 2 blanks; 3 steps: flip, flip, accept
        partial = blank_partial_run(width=5, steps=3)
        run = fits(tm, partial)
        assert run is not None
        assert verify_certificate(tm, partial, run)

    def test_constrained_first_row(self):
        tm = flip_machine()
        partial = PartialRun.from_strings(["S01__", "?????", "?????", "?????"])
        run = fits(tm, partial)
        assert run is not None
        assert run[0].as_string() == "S01__"

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            PartialRun.from_strings(["S0?", "S0??"])

    def test_unfittable_constraint(self):
        tm = flip_machine()
        # demand that the flipped symbol stays 1 (machine must write 0)
        partial = PartialRun.from_strings(["S1___", "1S___", "?????", "?????"])
        assert fits(tm, partial) is None

    def test_fittable_mid_constraint(self):
        tm = flip_machine()
        partial = PartialRun.from_strings(["S1___", "0S___", "?????"])
        run = fits(tm, partial)
        assert run is not None
        assert verify_certificate(tm, partial, run)

    def test_nondeterministic_fitting(self):
        tm = guessing_machine()
        # force the guessed rewrite of 0 to be 1
        partial = PartialRun.from_strings(["S00__", "1S0__", "?????", "?????"])
        run = fits(tm, partial)
        assert run is not None
        assert run[1].symbols()[0] == "1"

    def test_accepting_row_must_be_final(self):
        tm = flip_machine()
        # acceptance before the last row cannot be extended (A has no moves)
        partial = PartialRun.from_strings(["S____", "?A???", "?????", "?????"])
        assert fits(tm, partial) is None

    def test_certificate_rejects_mismatch(self):
        tm = flip_machine()
        partial = blank_partial_run(width=5, steps=3)
        run = fits(tm, partial)
        assert run is not None
        bad = list(run)
        bad[0] = Configuration((), "S", ("1", "1", "_", "_"))
        assert not verify_certificate(tm, partial, bad)

    def test_matches_wildcards(self):
        config = Configuration(("0",), "S", ("1",))
        assert matches(("?", "?", "?"), config)
        assert matches(("0", "S", "?"), config)
        assert not matches(("1", "?", "?"), config)

    def test_wildcard_fraction(self):
        partial = PartialRun.from_strings(["S0", "??"])
        assert partial.wildcard_fraction() == 0.5


class TestLadner:
    def test_all_strings(self):
        assert len(all_strings("01", 2)) == 1 + 2 + 4

    def test_h_bounded_when_decider_wins(self):
        # diagonal = reject-everything; decider 0 solves it: H eventually 0
        h = HFunction(diagonal=lambda w: False, deciders=trivial_deciders())
        assert h(2 ** 16) == 0

    def test_h_grows_when_no_decider_wins(self):
        diagonal = lambda w: w.startswith("10")
        h = HFunction(diagonal=diagonal, deciders=trivial_deciders())
        big = 2 ** 16
        assert h(big) == h.cap(big)  # runs to the cap

    def test_h_cap_is_loglog(self):
        h = HFunction(diagonal=lambda w: False, deciders=[])
        assert h.cap(2 ** 4) == 2
        assert h.cap(2 ** 16) == 4

    def test_padded_language_membership(self):
        h = HFunction(diagonal=lambda w: w.startswith("10"),
                      deciders=trivial_deciders())
        lang = PaddedLanguage(h=h, base=lambda w: w == "11")
        n = 2
        padding = lang.padding_length(n)
        assert lang.contains("1" * padding)

    def test_padded_language_rejects_wrong_padding(self):
        h = HFunction(diagonal=lambda w: False, deciders=[])
        lang = PaddedLanguage(h=h, base=lambda w: False)
        assert not lang.contains("111")
        assert not lang.contains("0")
