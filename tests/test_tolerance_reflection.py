"""Tests for the (2)=>(1) direction of Definition 3 (Section 4).

The implication 'certain on the unravelling => certain on D' holds for
uGF(=) ontologies under the uGF-unravelling and for uGC2(=) ontologies
under the uGC2-unravelling, but fails for counting ontologies under the
uGF-unravelling — the paper's ``∃≥4 R`` example.
"""

import pytest

from repro.core.tolerance import check_unravelling_reflection
from repro.logic.instance import make_instance
from repro.logic.ontology import ontology
from repro.queries.cq import parse_cq

COUNT4 = ontology(
    "forall x (x = x -> (exists>=4 y (R(x,y)) -> A(x)))", name="count4")
FAN3 = make_instance("R(a,b)", "R(a,c)", "R(a,d)")
A_QUERY = [parse_cq("q(x) <- A(x)")]


class TestCountingAnomaly:
    def test_ugf_unravelling_breaks_reflection(self):
        """Section 4: the uGF-unravelling of the fan gives the root copy
        extra successors, so A becomes certain on D^u but not on D."""
        ok, violations = check_unravelling_reflection(
            COUNT4, [FAN3], queries=A_QUERY, unravel_depth=3, flavour="uGF")
        assert not ok
        assert any(v.query.arity == 1 for v in violations)

    def test_ugc2_unravelling_preserves_reflection(self):
        """Condition (c') keeps successor counts: no violation."""
        ok, violations = check_unravelling_reflection(
            COUNT4, [FAN3], queries=A_QUERY, unravel_depth=3, flavour="uGC2")
        assert ok and not violations

    def test_plain_ugf_ontology_reflects(self):
        """For equality/counting-free uGF ontologies the uGF-unravelling
        always reflects (the homomorphism h : e -> e^ preserves answers)."""
        propagation = ontology("forall x,y (R(x,y) -> (A(x) -> A(y)))")
        marked = make_instance("A(a)", "R(a,b)", "R(a,c)", "R(a,d)")
        ok, violations = check_unravelling_reflection(
            propagation, [marked], queries=A_QUERY,
            unravel_depth=3, flavour="uGF")
        assert ok and not violations

    def test_small_fan_unaffected(self):
        """With two petals condition (c) already blocks revisits: the root
        copy keeps two successors and reflection holds even for uGF."""
        fan2 = make_instance("R(a,b)", "R(a,c)")
        ok, _ = check_unravelling_reflection(
            COUNT4, [fan2], queries=A_QUERY, unravel_depth=3, flavour="uGF")
        assert ok
