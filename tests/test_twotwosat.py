"""Tests for 2+2-SAT and the Theorem-3 hardness gadget."""

import pytest

from repro.core.materializability import check_materializability
from repro.logic.instance import make_instance
from repro.logic.ontology import ontology
from repro.logic.syntax import Const
from repro.queries.cq import UCQ, parse_cq
from repro.semantics.modelsearch import certain_answer
from repro.tm.twotwosat import (
    Clause22, HardnessGadget, TwoTwoSat, parse_22, random_22_formula,
)

DISJ = ontology("forall x (x = x -> (C(x) -> (A(x) | B(x))))", name="C->A|B")


def make_gadget() -> HardnessGadget:
    report = check_materializability(DISJ, max_elems=1, max_facts=1)
    assert report.witness is not None
    return HardnessGadget(report.witness)


class TestTwoTwoSat:
    def test_clause_semantics(self):
        clause = Clause22("p", "q", "n", "m")
        assert clause.satisfied({"p": True, "q": False, "n": True, "m": True})
        assert not clause.satisfied({"p": False, "q": False, "n": True, "m": True})

    def test_truth_constants(self):
        clause = Clause22("true", "false", "false", "false")
        assert clause.satisfied({})
        clause2 = Clause22("false", "false", "true", "true")
        assert not clause2.satisfied({})

    def test_parse(self):
        formula = parse_22("v1 v2 v3 v4\nfalse v1 true v2")
        assert len(formula.clauses) == 2
        assert set(formula.variables()) == {"v1", "v2", "v3", "v4"}

    def test_parse_rejects_wrong_arity(self):
        with pytest.raises(ValueError):
            parse_22("v1 v2 v3")

    def test_satisfiable(self):
        assert parse_22("v1 v1 v2 v2").satisfiable() is not None

    def test_unsatisfiable(self):
        # clause 1 forces v1 (p's false, negatives must fail -> ~true fails);
        # combination below is contradictory
        formula = parse_22("v1 v1 true true\nfalse false v1 v1")
        assert formula.satisfiable() is None

    def test_random_formula_deterministic(self):
        f1 = random_22_formula(3, 5, seed=1)
        f2 = random_22_formula(3, 5, seed=1)
        assert f1 == f2


class TestHardnessGadget:
    """Theorem 3: 2+2-SAT reduces to OMQ evaluation for any ontology that
    lacks the disjunction property (checked end-to-end via the engines)."""

    def setup_method(self):
        self.gadget = make_gadget()
        self.query = self.gadget.violation_query()

    def test_encode_structure(self):
        formula = parse_22("v1 v1 v2 v2")
        instance = self.gadget.encode(formula)
        assert len(instance.tuples("Cl")) == 1
        # one C-copy per variable
        assert len(instance.tuples("C")) == 2

    def test_violation_query_is_boolean(self):
        assert self.query.is_boolean()

    @pytest.mark.parametrize("text,expect_sat", [
        ("v1 v1 v2 v2", True),
        ("v1 v1 true true\nfalse false v1 v1", False),
        ("v1 v2 true true\nfalse false v1 v1\nfalse false v2 v2", False),
        ("false false v1 v1", True),  # satisfied by v1 = false
    ])
    def test_reduction_equivalence(self, text, expect_sat):
        formula = parse_22(text)
        assert (formula.satisfiable() is not None) == expect_sat
        instance = self.gadget.encode(formula)
        certain = certain_answer(DISJ, instance, self.query, (), extra=2).holds
        assert certain == (not expect_sat)


class TestLemma3:
    """Lemma 3: for O_UCQ/CQ, UCQ evaluation differs from CQ evaluation.

    O_UCQ/CQ = { forall x (A(x) | B(x))  v  exists x E(x) } is a GF sentence
    outside uGF; the union query A(x);B(x);E(x) is certain on any instance
    while no single disjunct is.
    """

    def setup_method(self):
        from repro.logic.ontology import Ontology
        from repro.logic.syntax import Atom, Eq, Exists, Forall, Or, Var
        x = Var("x")
        sentence = Or.of(
            Forall((x,), Eq(x, x), Or.of(Atom("A", (x,)), Atom("B", (x,)))),
            Exists((x,), None, Atom("E", (x,))),
        )
        self.onto = Ontology([sentence], name="O_UCQ/CQ")

    def test_union_certain_but_no_disjunct(self):
        D = make_instance("F(c)")
        qa = parse_cq("q() <- A(x)")
        qb = parse_cq("q() <- B(x)")
        qe = parse_cq("q() <- E(x)")
        union = UCQ((qa, qb, qe))
        assert certain_answer(self.onto, D, union, (), extra=2).holds
        for q in (qa, qb, qe):
            assert not certain_answer(self.onto, D, q, (), extra=2).holds

    def test_cq_with_e_present(self):
        D = make_instance("E(c)")
        qe = parse_cq("q() <- E(x)")
        assert certain_answer(self.onto, D, qe, (), extra=2).holds
